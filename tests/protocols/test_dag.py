"""Tests for the DIRECTEDACYCLICGRAPH best-effort protocol."""

import pytest

from repro.protocols.base import run_protocol
from repro.protocols.dag import DirectedAcyclicGraph
from repro.protocols.spanning_tree import SpanningTree
from repro.simulation.churn import ChurnSchedule
from repro.sketches.combiners import FMCountCombiner
from repro.topology.primitives import chain_topology, ring_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import constant_values, zipf_values


class TestConstruction:
    def test_invalid_num_parents(self):
        with pytest.raises(ValueError):
            DirectedAcyclicGraph(num_parents=0)

    def test_name_includes_k(self):
        assert DirectedAcyclicGraph(num_parents=3).name == "dag-k3"

    def test_default_combiner_is_duplicate_insensitive(self):
        from repro.queries.query import AggregateQuery

        combiner = DirectedAcyclicGraph(2).default_combiner(AggregateQuery.of("count"))
        assert combiner.duplicate_insensitive


class TestFailureFreeCorrectness:
    def test_max_exact(self, small_random_topology, zipf_values_60):
        result = run_protocol(DirectedAcyclicGraph(2), small_random_topology,
                              zipf_values_60, "max", seed=1)
        assert result.value == max(zipf_values_60)

    def test_count_estimate_reasonable(self, small_random_topology):
        values = constant_values(small_random_topology.num_hosts, 1)
        result = run_protocol(DirectedAcyclicGraph(2), small_random_topology, values,
                              "count", combiner=FMCountCombiner(repetitions=24), seed=1)
        truth = small_random_topology.num_hosts
        assert truth / 2 <= result.value <= truth * 2

    def test_multiple_parents_do_not_inflate_duplicate_insensitive_count(self):
        """The same sketch reaching the root via several parents must not
        change the estimate -- the whole point of using FM operators."""
        topo = ring_topology(10)
        values = constant_values(10, 1)
        k1 = run_protocol(DirectedAcyclicGraph(1), topo, values, "count",
                          combiner=FMCountCombiner(repetitions=16), d_hat=6, seed=7)
        k3 = run_protocol(DirectedAcyclicGraph(3), topo, values, "count",
                          combiner=FMCountCombiner(repetitions=16), d_hat=6, seed=7)
        # Same seed -> same sketches; k3 folds them in along more paths but
        # the OR-combine keeps the estimate identical or very close.
        assert k3.value <= k1.value * 1.5


class TestRobustness:
    def test_dag_tolerates_single_parent_failure_better_than_tree(self):
        """With k = 2 parents, one parent failing does not lose the subtree."""
        topo = random_topology(120, avg_degree=6, seed=11)
        values = constant_values(120, 1)
        failures = [(3.0, h) for h in (5, 17, 29, 41, 53)]
        churn = ChurnSchedule(failures=list(failures))
        combiner = FMCountCombiner(repetitions=24)
        tree = run_protocol(SpanningTree(), topo, values, "count",
                            combiner=FMCountCombiner(repetitions=24),
                            churn=churn, seed=11)
        dag = run_protocol(DirectedAcyclicGraph(3), topo, values, "count",
                           combiner=combiner, churn=churn, seed=11)
        # Both are best-effort, but the DAG should not do worse than the tree.
        assert dag.value >= tree.value * 0.9

    def test_extra_parents_increase_report_traffic(self):
        topo = random_topology(100, avg_degree=6, seed=12)
        values = constant_values(100, 1)
        k1 = run_protocol(DirectedAcyclicGraph(1), topo, values, "count",
                          combiner=FMCountCombiner(repetitions=8), seed=12)
        k3 = run_protocol(DirectedAcyclicGraph(3), topo, values, "count",
                          combiner=FMCountCombiner(repetitions=8), seed=12)
        reports_k1 = k1.costs.messages_by_kind["dag-report"]
        reports_k3 = k3.costs.messages_by_kind["dag-report"]
        assert reports_k3 > reports_k1

    def test_chain_degenerates_to_tree(self):
        """On a chain every host has one possible parent, so k is irrelevant."""
        topo = chain_topology(12)
        values = constant_values(12, 1)
        churn = ChurnSchedule(failures=[(4.0, 1)])
        k3 = run_protocol(DirectedAcyclicGraph(3), topo, values, "count",
                          combiner=FMCountCombiner(repetitions=16), d_hat=14,
                          churn=churn, seed=3)
        tree = run_protocol(SpanningTree(), topo, values, "count", d_hat=14,
                            churn=churn, seed=3)
        assert tree.value == 1.0
        # The DAG's FM estimate of a single host is also tiny.
        assert k3.value <= 4.0
