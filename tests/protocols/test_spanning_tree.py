"""Tests for the SPANNINGTREE best-effort protocol."""

import pytest

from repro.protocols.base import run_protocol
from repro.protocols.spanning_tree import SpanningTree
from repro.semantics.oracle import Oracle
from repro.simulation.churn import ChurnSchedule
from repro.sketches.combiners import ExactSumCombiner
from repro.topology.primitives import chain_topology, star_topology, tree_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import constant_values, zipf_values


class TestFailureFreeCorrectness:
    def test_count_is_exact_on_star(self):
        topo = star_topology(7)
        values = constant_values(8, 1)
        result = run_protocol(SpanningTree(), topo, values, "count", d_hat=3, seed=1)
        assert result.value == 8.0

    def test_count_is_exact_on_chain(self):
        topo = chain_topology(12)
        values = constant_values(12, 1)
        result = run_protocol(SpanningTree(), topo, values, "count", d_hat=14, seed=1)
        assert result.value == 12.0

    def test_count_is_exact_on_random_graph(self, small_random_topology):
        values = constant_values(small_random_topology.num_hosts, 1)
        result = run_protocol(SpanningTree(), small_random_topology, values, "count",
                              seed=2)
        assert result.value == small_random_topology.num_hosts

    def test_sum_is_exact(self, small_random_topology, zipf_values_60):
        result = run_protocol(SpanningTree(), small_random_topology, zipf_values_60,
                              "sum", combiner=ExactSumCombiner(), seed=2)
        assert result.value == sum(zipf_values_60)

    def test_max_is_exact(self, small_random_topology, zipf_values_60):
        result = run_protocol(SpanningTree(), small_random_topology, zipf_values_60,
                              "max", seed=2)
        assert result.value == max(zipf_values_60)

    def test_avg_is_exact(self, small_random_topology, zipf_values_60):
        result = run_protocol(SpanningTree(), small_random_topology, zipf_values_60,
                              "avg", seed=2)
        expected = sum(zipf_values_60) / len(zipf_values_60)
        assert result.value == pytest.approx(expected)


class TestFailureSensitivity:
    def test_interior_failure_loses_subtree_on_chain(self):
        """Example 1.1: failing an interior host discards its whole subtree."""
        topo = chain_topology(16)
        values = constant_values(16, 1)
        # Host 1 fails after Broadcast passed but before Convergecast reaches
        # it, so the querying host only hears about itself and host 1's
        # report never arrives.
        churn = ChurnSchedule(failures=[(5.0, 1)])
        result = run_protocol(SpanningTree(), topo, values, "count", d_hat=18,
                              churn=churn, seed=1)
        assert result.value < 16.0

    def test_failure_makes_answer_invalid(self):
        topo = chain_topology(16)
        values = constant_values(16, 1)
        churn = ChurnSchedule(failures=[(5.0, 1)])
        oracle = Oracle(topo, values, 0)
        result = run_protocol(SpanningTree(), topo, values, "count", d_hat=18,
                              churn=churn, seed=1)
        # The stable core is only {0} (the chain is cut), so small counts are
        # technically valid; but losing host 1's subtree means the answer can
        # never reflect hosts 2..15 even though they stayed alive: on a ring
        # this becomes invalid (see integration tests).  Here we simply pin
        # the quantitative behaviour.
        assert result.value == 1.0
        assert oracle.bounds("count", churn, horizon=result.termination_time).core_size == 1

    def test_leaf_failure_loses_only_that_leaf(self):
        topo = star_topology(9)
        values = constant_values(10, 1)
        churn = ChurnSchedule(failures=[(1.5, 5)])
        result = run_protocol(SpanningTree(), topo, values, "count", d_hat=3,
                              churn=churn, seed=1)
        assert result.value == 9.0


class TestCosts:
    def test_convergecast_sends_one_report_per_host(self):
        topo = tree_topology(depth=3, branching=2)  # 15 hosts
        values = constant_values(topo.num_hosts, 1)
        result = run_protocol(SpanningTree(), topo, values, "count", d_hat=5, seed=1)
        reports = result.costs.messages_by_kind["st-report"]
        assert reports == topo.num_hosts - 1

    def test_broadcast_messages_bounded_by_twice_edges(self, small_random_topology):
        values = constant_values(small_random_topology.num_hosts, 1)
        result = run_protocol(SpanningTree(), small_random_topology, values, "count",
                              seed=1)
        broadcasts = result.costs.messages_by_kind["st-broadcast"]
        assert broadcasts <= 2 * small_random_topology.num_edges

    def test_computation_cost_low_on_chain(self):
        topo = chain_topology(20)
        values = constant_values(20, 1)
        result = run_protocol(SpanningTree(), topo, values, "count", d_hat=22, seed=1)
        # Each chain host processes one broadcast and at most one report.
        assert result.costs.computation_cost <= 3
