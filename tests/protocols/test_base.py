"""Tests for the shared protocol plumbing."""

import pytest

from repro.protocols.base import resolve_d_hat, run_protocol
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.queries.query import AggregateQuery
from repro.sketches.combiners import ExactCountCombiner
from repro.topology.primitives import chain_topology, star_topology
from repro.workloads.values import constant_values


class TestResolveDHat:
    def test_explicit_value_passes_through(self):
        topo = chain_topology(5)
        assert resolve_d_hat(topo, 12) == 12

    def test_explicit_value_validated(self):
        topo = chain_topology(5)
        with pytest.raises(ValueError):
            resolve_d_hat(topo, 0)

    def test_estimate_overestimates_diameter(self):
        topo = chain_topology(9)  # diameter 8
        assert resolve_d_hat(topo, None) >= 8

    def test_minimum_of_one(self):
        topo = chain_topology(1)
        assert resolve_d_hat(topo, None) >= 1


class TestRunProtocol:
    def test_accepts_query_string_or_object(self):
        topo = star_topology(5)
        values = constant_values(6, 2)
        by_string = run_protocol(Wildfire(), topo, values, "max", seed=1)
        by_object = run_protocol(Wildfire(), topo, values, AggregateQuery.of("max"),
                                 seed=1)
        assert by_string.value == by_object.value == 2.0

    def test_validates_inputs(self):
        topo = star_topology(4)
        with pytest.raises(ValueError):
            run_protocol(Wildfire(), topo, [1, 2], "max")
        with pytest.raises(ValueError):
            run_protocol(Wildfire(), topo, [1] * 5, "max", querying_host=99)

    def test_duplicate_sensitive_combiner_rejected_for_wildfire(self):
        topo = star_topology(4)
        values = constant_values(5, 1)
        with pytest.raises(ValueError):
            run_protocol(Wildfire(), topo, values, "count",
                         combiner=ExactCountCombiner())

    def test_exact_combiner_allowed_for_spanning_tree(self):
        topo = star_topology(4)
        values = constant_values(5, 1)
        result = run_protocol(SpanningTree(), topo, values, "count",
                              combiner=ExactCountCombiner())
        assert result.value == 5.0

    def test_result_metadata(self):
        topo = chain_topology(6)
        values = constant_values(6, 3)
        result = run_protocol(Wildfire(), topo, values, "max", d_hat=7, seed=2)
        assert result.protocol == "wildfire"
        assert result.d_hat == 7
        assert result.termination_time == 14.0
        assert result.querying_host == 0
        assert result.costs.communication_cost > 0

    def test_default_combiner_choice(self):
        from repro.sketches.combiners import (
            ExactCountCombiner as Exact,
            FMCountCombiner,
            MaxCombiner,
        )

        wildfire = Wildfire()
        tree = SpanningTree()
        assert isinstance(wildfire.default_combiner(AggregateQuery.of("count")),
                          FMCountCombiner)
        assert isinstance(tree.default_combiner(AggregateQuery.of("count")), Exact)
        assert isinstance(tree.default_combiner(AggregateQuery.of("max")), MaxCombiner)
