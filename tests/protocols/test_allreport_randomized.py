"""Tests for ALLREPORT and RANDOMIZEDREPORT."""

import pytest

from repro.protocols.allreport import AllReport
from repro.protocols.base import run_protocol
from repro.protocols.randomized_report import (
    RandomizedReport,
    report_probability_for,
)
from repro.protocols.spanning_tree import SpanningTree
from repro.simulation.churn import ChurnSchedule
from repro.topology.primitives import chain_topology, ring_topology, star_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import constant_values, zipf_values


class TestAllReport:
    def test_exact_results_failure_free(self, small_random_topology, zipf_values_60):
        for kind, expected in (
            ("count", 60),
            ("sum", sum(zipf_values_60)),
            ("max", max(zipf_values_60)),
            ("min", min(zipf_values_60)),
        ):
            result = run_protocol(AllReport(), small_random_topology, zipf_values_60,
                                  kind, seed=1)
            assert result.value == pytest.approx(expected)

    def test_direct_delivery_costs_more_than_tree(self, small_random_topology):
        values = constant_values(small_random_topology.num_hosts, 1)
        allreport = run_protocol(AllReport(), small_random_topology, values, "count",
                                 seed=1)
        tree = run_protocol(SpanningTree(), small_random_topology, values, "count",
                            seed=1)
        assert allreport.costs.communication_cost > tree.costs.communication_cost

    def test_querying_host_neighborhood_is_hotspot(self):
        """Reports converge on the querying host's neighbors, so some host
        processes many more messages than in a tree protocol."""
        topo = chain_topology(15)
        values = constant_values(15, 1)
        result = run_protocol(AllReport(), topo, values, "count", d_hat=17, seed=1)
        # Host 1 forwards every downstream report: 13 reports + broadcast.
        assert result.costs.computation_cost >= 13

    def test_reports_reroute_around_failed_upstream(self):
        """When the recorded upstream hop dies, reports fall back to another
        alive neighbor instead of being dropped."""
        topo = ring_topology(8)
        values = constant_values(8, 1)
        churn = ChurnSchedule(failures=[(2.5, 1)])
        result = run_protocol(AllReport(), topo, values, "count", d_hat=10,
                              churn=churn, seed=1)
        # The failed host itself is lost, but most of the ring still reports.
        assert result.value >= 6.0

    def test_invalid_report_probability(self):
        with pytest.raises(ValueError):
            AllReport(report_probability=0.0)


class TestRandomizedReport:
    def test_probability_formula(self):
        p = report_probability_for(0.2, 0.1, 10000)
        assert 0.0 < p <= 1.0
        # Larger networks need a smaller sampling probability.
        assert report_probability_for(0.2, 0.1, 100000) < p

    def test_probability_clamped_to_one(self):
        assert report_probability_for(0.1, 0.05, 10) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            report_probability_for(0.0, 0.1, 100)
        with pytest.raises(ValueError):
            report_probability_for(0.1, 1.0, 100)
        with pytest.raises(ValueError):
            report_probability_for(0.1, 0.1, 0)

    def test_size_estimate_close_to_truth(self):
        topo = random_topology(400, avg_degree=5, seed=3)
        values = constant_values(400, 1)
        protocol = RandomizedReport(report_probability=0.25)
        result = run_protocol(protocol, topo, values, "count", seed=3)
        assert result.value == pytest.approx(400, rel=0.35)

    def test_sampling_reduces_report_traffic(self):
        topo = random_topology(300, avg_degree=5, seed=4)
        values = constant_values(300, 1)
        full = run_protocol(AllReport(), topo, values, "count", seed=4)
        sampled = run_protocol(RandomizedReport(report_probability=0.1), topo, values,
                               "count", seed=4)
        full_reports = full.costs.messages_by_kind["ar-report"]
        sampled_reports = sampled.costs.messages_by_kind["ar-report"]
        assert sampled_reports < full_reports / 3

    def test_epsilon_zeta_derivation_used_when_no_probability(self):
        topo = star_topology(30)
        values = constant_values(31, 1)
        protocol = RandomizedReport(epsilon=0.3, zeta=0.1)
        result = run_protocol(protocol, topo, values, "count", seed=5)
        # With such a small network the derived probability is 1, so the
        # count is exact.
        assert result.value == 31.0
