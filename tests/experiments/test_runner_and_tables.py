"""Tests for the experiment runner helpers and table formatting."""

import pytest

from repro.experiments.runner import TrialStats, aggregate_trials, run_trials, run_trials_multi
from repro.experiments.tables import format_table


class TestTrialStats:
    def test_aggregate_trials(self):
        stats = aggregate_trials([2.0, 4.0, 6.0])
        assert stats.mean == 4.0
        assert stats.samples == 3
        assert stats.low < 4.0 < stats.high

    def test_run_trials_passes_distinct_seeds(self):
        seen = []

        def trial(seed):
            seen.append(seed)
            return float(seed)

        stats = run_trials(trial, num_trials=4, base_seed=10)
        assert seen == [10, 11, 12, 13]
        assert stats.mean == 11.5

    def test_run_trials_validates_count(self):
        with pytest.raises(ValueError):
            run_trials(lambda s: 1.0, num_trials=0)

    def test_run_trials_multi(self):
        def trial(seed):
            return {"a": float(seed), "b": 2.0 * seed}

        stats = run_trials_multi(trial, num_trials=3, base_seed=1)
        assert set(stats) == {"a", "b"}
        assert stats["a"].mean == 2.0
        assert stats["b"].mean == 4.0

    def test_str_rendering(self):
        assert "+/-" in str(TrialStats(mean=1.0, ci=0.5, samples=3))


class TestFormatTable:
    def test_empty_rows(self):
        assert "(no data)" in format_table([], title="Empty")

    def test_alignment_and_title(self):
        rows = [{"name": "wildfire", "messages": 120},
                {"name": "tree", "messages": 30}]
        text = format_table(rows, title="Costs")
        lines = text.splitlines()
        assert lines[0] == "Costs"
        assert "name" in lines[1] and "messages" in lines[1]
        assert len(lines) == 5

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_float_rendering(self):
        rows = [{"x": 1.23456, "y": 4.0}]
        text = format_table(rows)
        assert "1.235" in text
        assert " 4" in text or "4" in text.splitlines()[-1]
