"""The sharded service drive: id-partitioned workers, merged digest.

``run_query_mix(shards=K)`` partitions the query mix by id across K
worker processes; because sessions are private and churn is a fixed
schedule, every per-query row must come back bit-identical, and the
parent recomputes the determinism digest with the single-process
algorithm.  Digest equality across shard counts is therefore the
end-to-end lock that sharding changed nothing a tenant can observe.
"""

import pytest

from repro.experiments.query_mix import run_query_mix

BASE = dict(num_hosts=200, topology="random", qps=1.5, duration=10.0,
            seed=5, stats="full", departures=6)


@pytest.fixture(scope="module")
def single_process_result():
    return run_query_mix(**BASE)


@pytest.mark.parametrize("shards", [2, 3])
def test_sharded_mix_matches_single_process(single_process_result, shards):
    sharded = run_query_mix(**BASE, shards=shards)
    assert (sharded["summary"]["determinism_digest"]
            == single_process_result["summary"]["determinism_digest"])
    assert sharded["rows"] == single_process_result["rows"]
    assert sharded["summary"]["shards"] == shards
    # Service-level tallies that must merge exactly (events_processed
    # legitimately differs: each shard's engine replays the shared
    # churn schedule on its private network copy).
    for key in ("queries", "answered", "failed", "messages_sent",
                "late_messages", "dropped_messages", "finished_at",
                "retired", "retired_order", "late_by_query"):
        assert (sharded["summary"][key]
                == single_process_result["summary"][key]), key
    assert (sharded["summary"]["events_processed"]
            >= single_process_result["summary"]["events_processed"])


def test_sharded_mix_rejects_unshippable_arguments():
    with pytest.raises(ValueError, match="progress"):
        run_query_mix(**BASE, shards=2, progress=lambda snap: None)
    with pytest.raises(ValueError, match="metrics stream"):
        run_query_mix(**BASE, shards=2, metrics_stream=object())
    with pytest.raises(ValueError, match="at least 1"):
        run_query_mix(**BASE, shards=0)


def test_submit_with_pinned_query_id():
    from repro.service import QueryService
    from repro.topology.random_graph import random_topology

    topology = random_topology(30, avg_degree=3.0, seed=3)
    values = [1.0] * topology.num_hosts
    service = QueryService(topology, values, seed=9)
    assert service.submit("wildfire", "count", query_id=4) == 4
    # Auto-assignment continues above any pinned id.
    assert service.submit("wildfire", "count") == 5
    with pytest.raises(ValueError, match="already in use"):
        service.submit("wildfire", "count", query_id=4)
    with pytest.raises(ValueError, match="start at 1"):
        service.submit("wildfire", "count", query_id=0)
    # Session seeds are content-derived, not id-derived: a worker that
    # submits query 4 under a pinned id gets the exact seed the
    # single-process run derived (the property the shard workers rely
    # on), and identical submissions agree regardless of their ids.
    assert service._sessions[4].seed == service._sessions[5].seed
    from repro.service.sharing import consensus_seed

    session = service._sessions[4]
    assert session.seed == consensus_seed(
        9, session.protocol, session.query, 0,
        session.protocol.default_combiner(session.query, repetitions=8),
        service.d_hat)


def test_serve_cli_threads_shards(capsys):
    from repro.orchestration.cli import main

    args = ["serve", "--hosts", "100", "--topology", "random",
            "--qps", "1", "--duration", "6", "--rows", "0"]

    def digest(output):
        import re

        match = re.search(r"\b[0-9a-f]{64}\b", output)
        assert match, output
        return match.group(0)

    assert main(args) == 0
    single = digest(capsys.readouterr().out)
    assert main(args + ["--shards", "2"]) == 0
    sharded = digest(capsys.readouterr().out)
    assert sharded == single
    assert main(args + ["--shards", "0"]) == 2
    assert "--shards" in capsys.readouterr().err


def test_bench_cli_validates_shards(capsys):
    from repro.orchestration.cli import main

    assert main(["bench", "--hosts", "64", "--topology", "random",
                 "--shards", "2"]) == 2
    assert "--lane sharded" in capsys.readouterr().err
    assert main(["bench", "--hosts", "64", "--topology", "random",
                 "--lane", "sharded", "--shards", "0"]) == 2
    assert "--shards" in capsys.readouterr().err


def test_bench_cli_runs_the_sharded_lane(capsys):
    from repro.orchestration.cli import main

    assert main(["bench", "--hosts", "300", "--topology", "random",
                 "--lane", "sharded", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "sharded lane x2" in out
