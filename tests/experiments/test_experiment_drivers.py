"""Smoke and shape tests for the per-figure experiment drivers.

These run the same code as the benchmark harness but at tiny scales so the
whole suite stays fast; the assertions check the *shape* of the results
(who wins, what stays within bounds) rather than absolute numbers.
"""

import pytest

from repro.experiments.accuracy import run_accuracy_experiment
from repro.experiments.badcase import run_theorem_44_experiment
from repro.experiments.capture_recapture import (
    run_capture_recapture_experiment,
    run_ring_segment_experiment,
)
from repro.experiments.communication import (
    run_communication_cost_experiment,
    run_grid_communication_experiment,
    wildfire_to_tree_ratio,
)
from repro.experiments.computation import (
    computation_cost_ratio,
    run_computation_cost_experiment,
)
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.time_cost import (
    run_messages_per_instant_experiment,
    run_time_cost_experiment,
)
from repro.experiments.validity_sweep import run_validity_sweep
from repro.topology.random_graph import random_topology


class TestAccuracyExperiment:
    def test_ratio_approaches_one_with_more_repetitions(self):
        rows = run_accuracy_experiment(set_sizes=(256,), repetitions_sweep=(1, 16),
                                       num_trials=4, include_sum=False, seed=1)
        by_reps = {row.repetitions: row.accuracy_ratio.mean for row in rows
                   if row.operator == "count"}
        assert abs(by_reps[16] - 1.0) <= abs(by_reps[1] - 1.0) + 0.35
        assert 0.4 <= by_reps[16] <= 1.8

    def test_sum_rows_present_when_enabled(self):
        rows = run_accuracy_experiment(set_sizes=(128,), repetitions_sweep=(4,),
                                       num_trials=2, include_sum=True, seed=1)
        assert {row.operator for row in rows} == {"count", "sum"}
        assert all("ratio_mean" in row.as_dict() for row in rows)


class TestValiditySweep:
    def test_wildfire_valid_tree_degrades(self):
        topo = random_topology(200, avg_degree=4, seed=5)
        rows = run_validity_sweep(topo, "count", departures=[4, 40],
                                  num_trials=2, seed=5)
        wildfire = [r for r in rows if r.protocol == "wildfire"]
        tree = [r for r in rows if r.protocol == "spanning-tree"]
        assert all(r.fraction_valid == 1.0 for r in wildfire)
        # Heavy churn should hurt the tree's declared count.
        heavy_tree = [r for r in tree if r.departures == 40][0]
        light_tree = [r for r in tree if r.departures == 4][0]
        assert heavy_tree.value.mean <= light_tree.value.mean
        # Oracle bounds shrink as more hosts leave.
        heavy_wf = [r for r in wildfire if r.departures == 40][0]
        light_wf = [r for r in wildfire if r.departures == 4][0]
        assert heavy_wf.oracle_lower.mean <= light_wf.oracle_lower.mean

    def test_row_serialisation(self):
        topo = random_topology(80, avg_degree=4, seed=6)
        rows = run_validity_sweep(topo, "sum", departures=[4], num_trials=1, seed=6)
        payload = rows[0].as_dict()
        assert {"protocol", "R", "value_mean", "oracle_lower", "oracle_upper",
                "valid_fraction"} <= set(payload)


class TestCommunicationExperiments:
    def test_wildfire_costs_more_than_tree_on_random(self):
        rows = run_communication_cost_experiment(network_sizes=(150,),
                                                 d_hat_factors=(1.0, 2.0),
                                                 include_gnutella_point=False,
                                                 seed=2)
        ratios = wildfire_to_tree_ratio(rows)
        assert ratios and all(ratio > 1.5 for ratio in ratios.values())

    def test_d_hat_overestimate_does_not_change_cost(self):
        rows = run_communication_cost_experiment(network_sizes=(150,),
                                                 d_hat_factors=(1.0, 2.0),
                                                 include_gnutella_point=False,
                                                 seed=2)
        wildfire_rows = [r for r in rows if r.label.startswith("wildfire")]
        messages = {r.messages for r in wildfire_rows}
        assert max(messages) <= min(messages) * 1.1

    def test_grid_min_max_cheaper_than_count(self):
        rows = run_grid_communication_experiment(grid_sides=(10,),
                                                 query_kinds=("count", "max", "min"),
                                                 seed=2)
        wf = {r.label: r.messages for r in rows if r.label.startswith("wildfire")}
        assert wf["wildfire/min"] < wf["wildfire/count"]
        assert wf["wildfire/max"] < wf["wildfire/count"]


class TestComputationExperiment:
    def test_wildfire_computation_cost_higher(self):
        rows = run_computation_cost_experiment(power_law_size=200, grid_side=8, seed=3)
        ratios = computation_cost_ratio(rows)
        assert all(ratio >= 1.0 for ratio in ratios.values())
        grid_rows = [r for r in rows if r.topology == "grid"]
        assert grid_rows and all(r.histogram for r in grid_rows)

    def test_histogram_accounts_for_every_host(self):
        rows = run_computation_cost_experiment(power_law_size=150, grid_side=8, seed=3)
        for row in rows:
            assert sum(row.histogram.values()) <= row.num_hosts
            assert row.median_cost <= row.max_cost


class TestTimeCostExperiments:
    def test_declaration_time_scales_with_d_hat(self):
        rows = run_time_cost_experiment(network_sizes=(150,),
                                        d_hat_factors=(1.0, 2.0), seed=4)
        wf = [r for r in rows if r.label.startswith("wildfire")]
        small = min(r.declaration_time for r in wf)
        large = max(r.declaration_time for r in wf)
        assert large > small

    def test_message_profile_peaks_before_termination(self):
        rows = run_messages_per_instant_experiment(random_size=150,
                                                   power_law_size=150,
                                                   grid_side=8, seed=4)
        for row in rows:
            assert row.profile
            assert row.peak_time() <= 2 * row.diameter_estimate * 2
            assert row.last_active_time() <= 2 * (row.diameter_estimate * 2 + 1)


class TestTheorem44:
    def test_spanning_tree_halves_wildfire_valid(self):
        results = run_theorem_44_experiment(cycle_size=30, seed=1)
        by_name = {r.protocol: r for r in results}
        assert by_name["spanning-tree"].error_factor >= 1.8
        assert not by_name["spanning-tree"].is_valid
        assert by_name["wildfire"].is_valid


class TestCaptureRecaptureExperiment:
    def test_relative_error_stays_small(self):
        rows = run_capture_recapture_experiment(initial_size=800, num_intervals=8,
                                                sample_size=200, seed=2)
        assert rows
        mean_error = sum(r.relative_error for r in rows) / len(rows)
        assert mean_error < 0.35

    def test_ring_segment_rows(self):
        rows = run_ring_segment_experiment(network_sizes=(300,), sample_size=80,
                                           num_trials=3, seed=2)
        assert rows[0]["|H|"] == 300
        assert rows[0]["mean_relative_error"] < 0.6


class TestFigureRegistry:
    def test_all_figures_registered(self):
        expected = {"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                    "fig13a", "fig13b", "thm4.4", "sec5.4"}
        assert expected <= set(FIGURES)

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_small_figure_runs_end_to_end(self):
        rows = run_figure("thm4.4", scale=0.4, seed=1)
        assert rows and isinstance(rows[0], dict)
