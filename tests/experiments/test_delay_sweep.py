"""Tests for the variable-delay validity sweep driver."""

from repro.experiments.delay_sweep import DEFAULT_DELAY_SPECS, run_delay_sweep
from repro.orchestration.runners import resolve_runner
from repro.topology.random_graph import random_topology


def test_sweep_covers_every_delay_protocol_churn_cell():
    topology = random_topology(40, seed=9)
    rows = run_delay_sweep(topology, "count", departures=(0, 5),
                           num_trials=2, seed=9)
    # 2 R values x 3 default delay specs x 4 default protocols.
    assert len(rows) == 2 * len(DEFAULT_DELAY_SPECS) * 4
    cells = {(r.delay, r.protocol, r.departures) for r in rows}
    assert len(cells) == len(rows)
    for row in rows:
        as_dict = row.as_dict()
        for key in ("delay", "protocol", "R", "value_mean", "oracle_lower",
                    "oracle_upper", "valid_fraction", "finished_at"):
            assert key in as_dict
        assert 0.0 <= row.fraction_valid <= 1.0


def test_wildfire_keeps_validity_under_every_delay_model():
    """The headline beyond-paper curve: WILDFIRE's valid fraction stays
    1.0 on every delay model even under churn."""
    topology = random_topology(40, seed=9)
    rows = run_delay_sweep(topology, "count", departures=(0, 5),
                           num_trials=2, seed=9)
    for row in rows:
        if row.protocol == "wildfire":
            assert row.fraction_valid == 1.0, (
                f"WILDFIRE lost validity under {row.delay} at R={row.departures}"
            )


def test_variable_delay_never_finishes_later_than_fixed():
    """Realised delays at most the bound can only give messages more
    slack, so runs finish no later than the fixed worst case."""
    topology = random_topology(40, seed=9)
    rows = run_delay_sweep(topology, "count", departures=(0,),
                           delay_specs=("fixed", "uniform:0.25,1.0"),
                           num_trials=2, seed=9)
    by_delay = {}
    for row in rows:
        by_delay.setdefault(row.protocol, {})[row.delay] = row.finished_at.mean
    for protocol, finishes in by_delay.items():
        assert finishes["uniform:0.25,1.0"] <= finishes["fixed"] + 1e-9, (
            f"{protocol} finished later under variable delay"
        )


def test_delay_sweep_runner_produces_rows():
    runner = resolve_runner("delay-sweep")
    rows = runner({"topology": "random", "size": 36, "aggregate": "count",
                   "delay": "heavy_tail:1.2", "departures": 4,
                   "protocol": "wildfire", "trials": 1}, seed=5)
    assert rows
    for row in rows:
        assert row["delay"] == "heavy_tail:1.2"
        assert row["protocol"] == "wildfire"
        assert row["R"] == 4
