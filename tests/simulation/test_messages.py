"""Tests for the message model."""

import types

import pytest

from repro.simulation.messages import Message


class TestMessage:
    def test_defaults(self):
        message = Message(sender=1, dest=2, kind="broadcast")
        assert message.payload == {}
        assert message.sent_at == 0.0
        assert message.chain_depth == 1
        assert not message.wireless

    def test_with_dest_copies_everything_else(self):
        message = Message(sender=1, dest=2, kind="k", payload={"a": 3},
                          sent_at=4.0, chain_depth=7, wireless=True)
        copy = message.with_dest(9)
        assert copy.dest == 9
        assert copy.sender == message.sender
        assert copy.kind == message.kind
        assert copy.payload == message.payload
        assert copy.sent_at == message.sent_at
        assert copy.chain_depth == message.chain_depth
        assert copy.wireless == message.wireless

    def test_immutable_by_convention(self):
        # The frozen-dataclass enforcement was dropped for hot-path speed;
        # messages are immutable by convention.  The practical contract is
        # that deriving a message never mutates the original and that the
        # slotted class rejects ad-hoc attribute invention.
        message = Message(sender=1, dest=2, kind="k")
        copy = message.with_dest(5)
        assert message.dest == 2
        assert copy.dest == 5
        try:
            message.brand_new_attribute = 1
            grew = True
        except AttributeError:
            grew = False
        assert not grew

    def test_describe_mentions_endpoints_and_kind(self):
        message = Message(sender=1, dest=2, kind="broadcast", sent_at=3.0)
        text = message.describe()
        assert "broadcast" in text
        assert "1" in text and "2" in text

    def test_query_id_and_vtime_default_to_zero_and_round_trip(self):
        # Single-query simulations never set the session fields; the
        # service layer stamps them and with_dest must preserve both.
        message = Message(sender=1, dest=2, kind="k")
        assert message.query_id == 0 and message.vtime == 0.0
        tagged = Message(sender=1, dest=2, kind="k", query_id=7, vtime=3.5)
        copy = tagged.with_dest(3)
        assert copy.query_id == 7
        assert copy.vtime == 3.5


#: Protocol x query cells for the shared-payload mutation check: every
#: registered protocol that multicasts, on its natural query kind.
_MULTICAST_CELLS = [
    ("wildfire", "min"),
    ("wildfire", "count"),
    ("spanning-tree", "count"),
    ("dag2", "count"),
    ("allreport", "count"),
    ("randomized-report", "count"),
    ("gossip", "count"),
]


@pytest.fixture
def frozen_payloads(monkeypatch):
    """Freeze every delivered payload with a read-only mapping proxy.

    Patched at the event-queue seam so the *exact* mapping objects handed
    to receivers are frozen (the engine's submit paths re-snapshot
    payloads internally, so patching those would freeze the wrong dict).
    A multicast's deliveries share one snapshot, so all of its proxies
    wrap the same underlying dict -- any receiver mutation raises
    TypeError instead of silently corrupting sibling deliveries.
    """
    from repro.simulation.events import EventQueue

    original_push = EventQueue.push_deliver
    original_extend = EventQueue.extend_delivers
    original_multicast = EventQueue.push_multicast

    def freezing_push(self, time, message):
        message.payload = types.MappingProxyType(message.payload)
        original_push(self, time, message)

    def freezing_extend(self, time, messages):
        if messages:
            shared = types.MappingProxyType(messages[0].payload)
            for message in messages:
                message.payload = shared
        original_extend(self, time, messages)

    def freezing_multicast(self, time, sender, dests, kind, payload,
                           *args, **kwargs):
        # The batch's one snapshot becomes every minted delivery's payload,
        # so freezing it here freezes the whole multicast.
        original_multicast(self, time, sender, dests, kind,
                           types.MappingProxyType(payload), *args, **kwargs)

    monkeypatch.setattr(EventQueue, "push_deliver", freezing_push)
    monkeypatch.setattr(EventQueue, "extend_delivers", freezing_extend)
    monkeypatch.setattr(EventQueue, "push_multicast", freezing_multicast)


class TestSharedMulticastPayloadsAreNeverMutated:
    """Defensive lock on the multicast fast path.

    ``Message`` lost ``frozen=True`` for hot-path speed, and a multicast
    shares ONE payload snapshot between all of its deliveries -- so a
    receiver mutating a payload would silently corrupt the copies its
    siblings have not received yet.  This became load-bearing once the
    query service multiplexes many tenants over one substrate: a single
    misbehaving protocol could corrupt another query's in-flight state.
    """

    @pytest.mark.parametrize("protocol_name,query", _MULTICAST_CELLS)
    def test_protocols_never_mutate_shared_payloads(
            self, protocol_name, query, frozen_payloads,
            small_random_topology, zipf_values_60):
        from repro.protocols.base import protocol_from_spec, run_protocol

        result = run_protocol(
            protocol_from_spec(protocol_name), small_random_topology,
            zipf_values_60, query, querying_host=0, seed=11)
        assert result.value is not None
        assert result.costs.messages_sent > 0

    def test_frozen_payloads_also_hold_inside_the_query_service(
            self, frozen_payloads, small_random_topology, zipf_values_60):
        # The service's session multicast shares payload snapshots the
        # same way; a mutating receiver would corrupt another tenant.
        from repro.service import QueryService, QueryStatus

        service = QueryService(small_random_topology, zipf_values_60, seed=4)
        ids = [service.submit("wildfire", "count", at=0.0),
               service.submit("spanning-tree", "sum", at=1.0,
                              querying_host=7)]
        service.run()
        for query_id in ids:
            assert service.poll(query_id).status is QueryStatus.DONE

    def test_a_mutating_receiver_would_be_caught(self, frozen_payloads):
        # Sanity-check the harness itself: a deliberately misbehaving
        # receiver must raise, proving mutations cannot slip through.
        from repro.simulation.engine import Simulator
        from repro.simulation.host import HostContext, ProtocolHost
        from repro.simulation.network import DynamicNetwork

        class Mutator(ProtocolHost):
            def on_query_start(self, ctx: HostContext) -> None:
                ctx.send_to_neighbors("evil", {"x": 1})

            def on_message(self, message, ctx: HostContext) -> None:
                message.payload["x"] = 999  # must raise

        network = DynamicNetwork([{1}, {0, 2}, {1}])
        simulator = Simulator(network, [Mutator(i, 0.0) for i in range(3)],
                              querying_host=1)
        with pytest.raises(TypeError):
            simulator.run()
