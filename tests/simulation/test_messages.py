"""Tests for the message model."""

from repro.simulation.messages import Message


class TestMessage:
    def test_defaults(self):
        message = Message(sender=1, dest=2, kind="broadcast")
        assert message.payload == {}
        assert message.sent_at == 0.0
        assert message.chain_depth == 1
        assert not message.wireless

    def test_with_dest_copies_everything_else(self):
        message = Message(sender=1, dest=2, kind="k", payload={"a": 3},
                          sent_at=4.0, chain_depth=7, wireless=True)
        copy = message.with_dest(9)
        assert copy.dest == 9
        assert copy.sender == message.sender
        assert copy.kind == message.kind
        assert copy.payload == message.payload
        assert copy.sent_at == message.sent_at
        assert copy.chain_depth == message.chain_depth
        assert copy.wireless == message.wireless

    def test_immutable_by_convention(self):
        # The frozen-dataclass enforcement was dropped for hot-path speed;
        # messages are immutable by convention.  The practical contract is
        # that deriving a message never mutates the original and that the
        # slotted class rejects ad-hoc attribute invention.
        message = Message(sender=1, dest=2, kind="k")
        copy = message.with_dest(5)
        assert message.dest == 2
        assert copy.dest == 5
        try:
            message.brand_new_attribute = 1
            grew = True
        except AttributeError:
            grew = False
        assert not grew

    def test_describe_mentions_endpoints_and_kind(self):
        message = Message(sender=1, dest=2, kind="broadcast", sent_at=3.0)
        text = message.describe()
        assert "broadcast" in text
        assert "1" in text and "2" in text
