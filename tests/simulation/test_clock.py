"""Tests for the simulation clock."""

import pytest

from repro.simulation.clock import SimulationClock


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        clock = SimulationClock()
        assert clock.now == 0.0

    def test_starts_at_custom_time(self):
        clock = SimulationClock(start=5.5)
        assert clock.now == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimulationClock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = SimulationClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0
        clock.advance_to(3.0)  # advancing to the same time is allowed
        assert clock.now == 3.0

    def test_advance_backwards_raises(self):
        clock = SimulationClock()
        clock.advance_to(4.0)
        with pytest.raises(ValueError):
            clock.advance_to(2.0)

    def test_reset_returns_to_start(self):
        clock = SimulationClock()
        clock.advance_to(10.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_to_custom_time(self):
        clock = SimulationClock()
        clock.advance_to(10.0)
        clock.reset(2.0)
        assert clock.now == 2.0

    def test_reset_rejects_negative(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            clock.reset(-3.0)
