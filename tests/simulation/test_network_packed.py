"""Differential tests: the packed CSR network against the set-based spec.

:class:`~repro.simulation.network.DynamicNetwork` stores adjacency in
packed CSR arrays with an alive bitmap and a join-overflow table;
:class:`~repro.simulation.network_reference.ReferenceNetwork` is the
retained pre-rewrite set-based implementation.  These tests replay
hypothesis-generated churn/join/observation sequences against both and
require every observable to agree at every step -- the packed core must
be *indistinguishable*, not merely equivalent on happy paths.

The module also carries the calendar-queue fuzz for the join overflow
table (joins and departures interleaved through a real ``Simulator``
run) and the regression lock on ``alive_hosts``/``num_alive`` being
served from the maintained count plus bitmap.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulation.network import DynamicNetwork, NetworkEventKind
from repro.simulation.network_reference import ReferenceNetwork


# ---------------------------------------------------------------------------
# Sequence generation
# ---------------------------------------------------------------------------

def _random_edges(n: int, rng: random.Random):
    """A connected-ish random symmetric edge list on ``n`` hosts."""
    edges = set()
    for host in range(1, n):
        other = rng.randrange(host)  # spanning tree: keeps things reachable
        edges.add((other, host))
    extra = rng.randrange(0, 2 * n)
    for _ in range(extra):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return sorted(edges)


@st.composite
def churn_scripts(draw):
    """(num_hosts, edge list, operations) with ops valid by construction.

    Operations are drawn as abstract choices and resolved against the
    evolving alive set, so every script is replayable on both
    implementations without hitting their validation errors.
    """
    n = draw(st.integers(min_value=2, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    edges = _random_edges(n, rng)
    num_ops = draw(st.integers(min_value=0, max_value=12))
    ops = []
    alive = list(range(n))
    next_id = n
    for step in range(num_ops):
        kind = draw(st.sampled_from(["fail", "join", "join", "fail"]))
        if kind == "fail" and len(alive) > 1:
            victim = draw(st.sampled_from(sorted(alive)))
            alive.remove(victim)
            ops.append(("fail", victim, float(step)))
        elif kind == "join" and alive:
            k = draw(st.integers(min_value=0, max_value=min(3, len(alive))))
            neighbors = draw(st.permutations(sorted(alive)))[:k]
            ops.append(("join", tuple(neighbors), float(step)))
            alive.append(next_id)
            next_id += 1
    return n, edges, ops


def _observe(network):
    """Every cheap observable of a network, as one comparable structure."""
    n = network.num_hosts
    return {
        "num_hosts": n,
        "num_alive": network.num_alive,
        "alive_hosts": network.alive_hosts,
        "ever_alive": network.ever_alive,
        "num_edges": network.num_edges(),
        "edges": set(network.edges()),
        "neighbors": [set(network.neighbors(h)) for h in range(n)],
        "sorted_views": [network.alive_neighbors_sorted(h) for h in range(n)],
        "all_neighbors": [network.all_neighbors(h) for h in range(n)],
        "initial": [network.initial_neighbors(h) for h in range(n)],
        "degrees": [network.degree(h) for h in range(n)],
        "alive": [network.is_alive(h) for h in range(n)],
        "snapshot": network.snapshot_adjacency(),
        "events": network.events,
    }


def _assert_identical(packed, reference):
    obs_p, obs_r = _observe(packed), _observe(reference)
    for key in obs_r:
        assert obs_p[key] == obs_r[key], f"packed core diverged on {key}"
    n = packed.num_hosts
    # Pairwise edge predicates over every (a, b), including failed hosts.
    for a in range(n):
        for b in range(n):
            assert packed.has_edge(a, b) == reference.has_edge(a, b)
            assert (packed.has_alive_edge(a, b)
                    == reference.has_alive_edge(a, b))
    # Traversals: distances, reachability, diameter, connectivity.
    for source in range(n):
        assert (packed.bfs_distances(source)
                == reference.bfs_distances(source))
        assert (packed.bfs_distances(source, alive_only=False)
                == reference.bfs_distances(source, alive_only=False))
        assert (packed.reachable_from(source)
                == reference.reachable_from(source))
    assert packed.is_connected() == reference.is_connected()
    assert (packed.diameter_estimate(samples=4, seed=3)
            == reference.diameter_estimate(samples=4, seed=3))


class TestDifferentialChurnReplay:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(script=churn_scripts())
    def test_every_observable_matches_the_reference_at_every_step(
            self, script):
        n, edges, ops = script
        packed = DynamicNetwork.from_edges(n, edges)
        reference = ReferenceNetwork.from_edges(n, edges)
        _assert_identical(packed, reference)
        for op in ops:
            if op[0] == "fail":
                _, victim, time = op
                packed.fail_host(victim, time)
                reference.fail_host(victim, time)
            else:
                _, neighbors, time = op
                new_p = packed.join_host(neighbors, time)
                new_r = reference.join_host(neighbors, time)
                assert new_p == new_r
            _assert_identical(packed, reference)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(script=churn_scripts())
    def test_copies_stay_identical_and_independent(self, script):
        n, edges, ops = script
        packed = DynamicNetwork.from_edges(n, edges)
        reference = ReferenceNetwork.from_edges(n, edges)
        for op in ops:
            if op[0] == "fail":
                packed.fail_host(op[1], op[2])
                reference.fail_host(op[1], op[2])
            else:
                packed.join_host(op[1], op[2])
                reference.join_host(op[1], op[2])
        clone = packed.copy()
        _assert_identical(clone, reference)
        # Mutating the clone must not leak into the original (the clones
        # share the immutable base CSR but nothing mutable).
        survivors = clone.alive_hosts
        if len(survivors) > 1:
            clone.fail_host(survivors[-1], 99.0)
            assert packed.is_alive(survivors[-1])
            _assert_identical(packed, reference)

    def test_duplicate_trusted_input_rows_are_normalised_like_reference(self):
        # The old implementation passed every row through set() even on
        # the validate=False trusted path; the CSR build must normalise
        # identically or duplicated entries would double-count degrees
        # and double-deliver multicasts.
        raw = [[1, 1, 2], (0, 2, 2), {0, 1}]
        packed = DynamicNetwork(raw, validate=False, copy=False)
        reference = ReferenceNetwork(raw, validate=False, copy=False)
        _assert_identical(packed, reference)
        assert packed.alive_neighbors_sorted(0) == (1, 2)
        assert packed.degree(1) == 2
        assert packed.num_edges() == 3

    def test_rejections_match_the_reference(self):
        packed = DynamicNetwork.from_edges(3, [(0, 1), (1, 2)])
        reference = ReferenceNetwork.from_edges(3, [(0, 1), (1, 2)])
        for network in (packed, reference):
            network.fail_host(2, 1.0)
            with pytest.raises(ValueError):
                network.fail_host(2, 2.0)       # double failure
            with pytest.raises(ValueError):
                network.join_host([2], 3.0)     # join at failed host
            with pytest.raises(ValueError):
                network.join_host([17], 3.0)    # unknown neighbor
        _assert_identical(packed, reference)


class TestAliveAccountingRegression:
    """Satellite lock: ``num_alive`` is the maintained O(1) count and
    ``alive_hosts`` the bitmap scan; both must track the reference under
    arbitrary churn (the count is easy to desynchronise by hand)."""

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(script=churn_scripts())
    def test_alive_count_and_listing_agree_with_reference(self, script):
        n, edges, ops = script
        packed = DynamicNetwork.from_edges(n, edges)
        reference = ReferenceNetwork.from_edges(n, edges)
        for op in ops:
            if op[0] == "fail":
                packed.fail_host(op[1], op[2])
                reference.fail_host(op[1], op[2])
            else:
                packed.join_host(op[1], op[2])
                reference.join_host(op[1], op[2])
            assert packed.num_alive == reference.num_alive
            assert packed.alive_hosts == reference.alive_hosts
            # The maintained count equals a fresh bitmap scan, too.
            assert packed.num_alive == sum(packed._alive)

    def test_num_alive_is_not_an_o_n_scan(self):
        # The property must read the maintained count, not re-sum the
        # bitmap: corrupt the bitmap behind the count's back and check the
        # count (not the scan) is what is served.
        network = DynamicNetwork.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        network._alive[3] = 0  # bypass fail_host on purpose
        assert network.num_alive == 4


# ---------------------------------------------------------------------------
# Join-overflow fuzz through the calendar queue
# ---------------------------------------------------------------------------

class _ProbeHost:
    """Minimal inert protocol host (dict-based on purpose: tests may)."""

    def __init__(self, host_id, value=0.0):
        self.host_id = host_id
        self.value = value

    def on_query_start(self, ctx):
        pass

    def on_message(self, message, ctx):
        pass

    def on_timer(self, name, data, ctx):
        pass

    def on_fail(self, time):
        pass

    def local_result(self):
        return None


def _fuzz_run(seed: int, delay):
    """Interleave joins and departures through one Simulator run.

    A CUSTOM probe fires between every pair of churn instants and checks
    the packed core against a reference replayed from the event log:

    * no alive-neighbor view ever yields a departed host;
    * a join's edges appear exactly at (not before) its scheduled tick;
    * the overflow table stays consistent with the reference adjacency.
    """
    from repro.simulation.churn import ChurnSchedule, JoinSpec
    from repro.simulation.engine import Simulator
    from repro.simulation.events import EventKind

    rng = random.Random(seed)
    n = rng.randrange(8, 16)
    edges = _random_edges(n, rng)
    network = DynamicNetwork.from_edges(n, edges)
    reference = ReferenceNetwork.from_edges(n, edges)

    alive = list(range(n))
    next_id = n
    failures, joins = [], []
    expected = {}  # tick -> list of ("fail", host) / ("join", neighbors)
    for step in range(rng.randrange(4, 10)):
        tick = float(step + 1)
        expected[tick] = []
        for _ in range(rng.randrange(1, 3)):
            if rng.random() < 0.5 and len(alive) > 2:
                victim = alive.pop(rng.randrange(1, len(alive)))
                failures.append((tick, victim))
                expected[tick].append(("fail", victim))
            else:
                k = rng.randrange(1, min(3, len(alive)) + 1)
                neighbors = tuple(sorted(rng.sample(alive, k)))
                joins.append(JoinSpec(time=tick, neighbors=neighbors))
                expected[tick].append(("join", neighbors))
                alive.append(next_id)
                next_id += 1

    churn = ChurnSchedule(failures=failures, joins=joins)
    hosts = [_ProbeHost(h) for h in range(n)]
    simulator = Simulator(network=network, hosts=hosts, querying_host=0,
                          churn=churn, delay_model=delay, max_time=100.0)

    observations = []

    def probe(sim, tick=None):
        observations.append((sim.clock.now, _observe(sim.network)))

    horizon = max(expected) + 1.0
    for step in range(int(horizon) + 1):
        # +0.5 puts the probe strictly between churn instants; churn at
        # tick t must be visible at t + 0.5 and not at t - 0.5.
        simulator._queue.push(step + 0.5, EventKind.CUSTOM, data=probe)
    simulator.run(until=horizon)
    return network, reference, expected, observations


@pytest.mark.parametrize("delay", [None, "uniform:0.25,1.0", "per_edge"],
                         ids=["fixed", "uniform", "per_edge"])
@pytest.mark.parametrize("seed", range(6))
def test_join_overflow_fuzz_through_calendar_queue(seed, delay):
    from repro.simulation.delay import delay_model_from_spec

    model = delay_model_from_spec(delay, 1.0, seed=seed)
    network, reference, expected, observations = _fuzz_run(seed, model)

    # Replay the network's own event log onto the reference implementation
    # step by step, checking each probe snapshot against it.
    log = network.events
    cursor = 0
    for now, observed in observations:
        while cursor < len(log) and log[cursor].time <= now:
            event = log[cursor]
            if event.kind is NetworkEventKind.FAIL:
                reference.fail_host(event.host, event.time)
            else:
                reference.join_host(event.neighbors, event.time)
            cursor += 1
        ref_obs = _observe(reference)
        for key in ref_obs:
            assert observed[key] == ref_obs[key], (
                f"t={now}: packed core diverged from replayed reference "
                f"on {key}")
        # No view may ever contain a departed host.
        dead = [h for h, a in enumerate(observed["alive"]) if not a]
        for h, view in enumerate(observed["sorted_views"]):
            for d in dead:
                assert d not in view, (
                    f"t={now}: departed host {d} served in host {h}'s view")

    # The event log must contain exactly the scheduled churn, at exactly
    # its scheduled ticks (joins appear at their tick, never earlier).
    # Within one instant the calendar drains JOIN before FAIL (the
    # engine's kind priorities), so expectations are ordered accordingly.
    scheduled = [
        (t, op)
        for t in sorted(expected)
        for op in (sorted(expected[t], key=lambda o: o[0] != "join"))
    ]
    assert len(log) == len(scheduled)
    for event, (tick, op) in zip(log, scheduled):
        assert event.time == tick
        if op[0] == "fail":
            assert event.kind is NetworkEventKind.FAIL
            assert event.host == op[1]
        else:
            assert event.kind is NetworkEventKind.JOIN
            assert event.neighbors == op[1]
    # And every join's edges are present (symmetrically) afterwards, for
    # neighbors that survived to the end.
    for event in log:
        if event.kind is NetworkEventKind.JOIN:
            for neighbor in event.neighbors:
                if network.is_alive(neighbor) and network.is_alive(event.host):
                    assert network.has_edge(event.host, neighbor)
                    assert network.has_edge(neighbor, event.host)
