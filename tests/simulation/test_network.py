"""Tests for the dynamic network graph."""

import pytest

from repro.simulation.network import DynamicNetwork, NetworkEventKind


def triangle_plus_tail():
    """Hosts 0-1-2 form a triangle; host 3 hangs off host 2."""
    return DynamicNetwork.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])


class TestConstruction:
    def test_from_edges_builds_symmetric_adjacency(self):
        network = triangle_plus_tail()
        assert network.neighbors(0) == {1, 2}
        assert network.neighbors(3) == {2}
        assert network.num_edges() == 4

    def test_validation_rejects_self_loops(self):
        with pytest.raises(ValueError):
            DynamicNetwork([{0}])

    def test_validation_rejects_asymmetric_edges(self):
        with pytest.raises(ValueError):
            DynamicNetwork([{1}, set()])

    def test_validation_rejects_unknown_neighbor(self):
        with pytest.raises(ValueError):
            DynamicNetwork([{5}])

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(ValueError):
            DynamicNetwork.from_edges(2, [(0, 0)])


class TestAccessors:
    def test_alive_hosts_initially_all(self):
        network = triangle_plus_tail()
        assert network.alive_hosts == [0, 1, 2, 3]
        assert network.num_alive == 4
        assert len(network) == 4

    def test_edges_iteration_is_undirected(self):
        network = triangle_plus_tail()
        edges = set(network.edges())
        assert edges == {(0, 1), (0, 2), (1, 2), (2, 3)}

    def test_degree(self):
        network = triangle_plus_tail()
        assert network.degree(2) == 3
        assert network.degree(3) == 1

    def test_ever_alive_tracks_initial_hosts(self):
        network = triangle_plus_tail()
        assert network.ever_alive == {0, 1, 2, 3}


class TestFailures:
    def test_fail_host_removes_edges_and_liveness(self):
        network = triangle_plus_tail()
        network.fail_host(2, time=1.0)
        assert not network.is_alive(2)
        assert network.neighbors(0) == {1}
        assert network.neighbors(3) == set()
        assert network.num_alive == 3

    def test_fail_host_twice_raises(self):
        network = triangle_plus_tail()
        network.fail_host(2, time=1.0)
        with pytest.raises(ValueError):
            network.fail_host(2, time=2.0)

    def test_failure_recorded_in_event_log(self):
        network = triangle_plus_tail()
        network.fail_host(1, time=4.5)
        events = network.events
        assert len(events) == 1
        assert events[0].kind is NetworkEventKind.FAIL
        assert events[0].host == 1
        assert events[0].time == 4.5
        assert events[0].neighbors == (0, 2)

    def test_failed_host_still_counted_in_ever_alive(self):
        network = triangle_plus_tail()
        network.fail_host(3, time=1.0)
        assert 3 in network.ever_alive


class TestJoins:
    def test_join_adds_host_with_edges(self):
        network = triangle_plus_tail()
        new_id = network.join_host([0, 1], time=2.0)
        assert new_id == 4
        assert network.is_alive(new_id)
        assert network.neighbors(new_id) == {0, 1}
        assert new_id in network.neighbors(0)

    def test_join_at_failed_host_raises(self):
        network = triangle_plus_tail()
        network.fail_host(1, time=1.0)
        with pytest.raises(ValueError):
            network.join_host([1], time=2.0)

    def test_join_records_event(self):
        network = triangle_plus_tail()
        network.join_host([0], time=3.0)
        assert network.events[-1].kind is NetworkEventKind.JOIN


class TestGraphAlgorithms:
    def test_bfs_distances_on_chain(self):
        network = DynamicNetwork.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert network.bfs_distances(0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_skips_failed_hosts(self):
        network = DynamicNetwork.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        network.fail_host(1, time=1.0)
        distances = network.bfs_distances(0)
        assert distances == {0: 0}

    def test_reachability_after_partition(self):
        network = triangle_plus_tail()
        network.fail_host(2, time=1.0)
        assert network.reachable_from(0) == {0, 1}
        assert network.reachable_from(3) == {3}
        assert not network.is_connected()

    def test_diameter_estimate_on_chain_is_exact(self):
        network = DynamicNetwork.from_edges(6, [(i, i + 1) for i in range(5)])
        assert network.diameter_estimate(samples=4) == 5

    def test_copy_is_independent(self):
        network = triangle_plus_tail()
        clone = network.copy()
        network.fail_host(0, time=1.0)
        assert clone.is_alive(0)
        assert not network.is_alive(0)

    def test_snapshot_adjacency_is_deep(self):
        network = triangle_plus_tail()
        snapshot = network.snapshot_adjacency()
        snapshot[0].add(3)
        assert 3 not in network.neighbors(0)
