"""Tests for the discrete-event simulation engine."""

from typing import Any, Optional

import pytest

from repro.simulation.churn import ChurnSchedule
from repro.simulation.engine import Simulator
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.simulation.network import DynamicNetwork
from repro.topology.primitives import chain_topology, star_topology


class FloodHost(ProtocolHost):
    """Minimal protocol: flood a token once, remember when it arrived."""

    def __init__(self, host_id: int, value: float = 0.0) -> None:
        super().__init__(host_id, value)
        self.received_at: Optional[float] = None
        self.seen = False

    def on_query_start(self, ctx: HostContext) -> None:
        self.seen = True
        self.received_at = ctx.now
        ctx.send_to_neighbors("token", {})

    def on_message(self, message: Message, ctx: HostContext) -> None:
        if self.seen:
            return
        self.seen = True
        self.received_at = ctx.now
        ctx.send_to_neighbors("token", {}, exclude=(message.sender,))

    def local_result(self):
        return self.received_at


class TimerHost(ProtocolHost):
    """Host that fires a sequence of timers."""

    def __init__(self, host_id: int) -> None:
        super().__init__(host_id, 0.0)
        self.fired = []

    def on_query_start(self, ctx: HostContext) -> None:
        ctx.set_timer(1.5, "a", data="first")
        ctx.set_timer(3.0, "b", data="second")

    def on_message(self, message: Message, ctx: HostContext) -> None:
        pass

    def on_timer(self, name: str, data: Any, ctx: HostContext) -> None:
        self.fired.append((ctx.now, name, data))


def build_simulator(topology, hosts=None, **kwargs):
    network = topology.to_network()
    if hosts is None:
        hosts = [FloodHost(i) for i in range(topology.num_hosts)]
    return Simulator(network=network, hosts=hosts, querying_host=0, **kwargs), hosts


class TestFlooding:
    def test_flood_reaches_every_host_on_chain(self):
        topo = chain_topology(6)
        simulator, hosts = build_simulator(topo)
        simulator.run(until=50)
        assert all(h.seen for h in hosts)
        # Host i is i hops away and delta defaults to 1.
        assert [h.received_at for h in hosts] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_flood_on_star_takes_two_hops_max(self):
        topo = star_topology(5)
        simulator, hosts = build_simulator(topo)
        simulator.run(until=50)
        assert hosts[0].received_at == 0.0
        assert all(h.received_at == 1.0 for h in hosts[1:])

    def test_communication_cost_counts_every_link_message(self):
        topo = chain_topology(4)
        simulator, _ = build_simulator(topo)
        result = simulator.run(until=50)
        # 0->1, 1->2, 2->3 plus the backward echo exclusions: FloodHost
        # excludes only the sender, so host 1 sends to 2, host 2 sends to 3.
        assert result.costs.communication_cost == 3

    def test_wireless_mode_counts_multicast_once(self):
        topo = star_topology(4)
        simulator, _ = build_simulator(topo, wireless=True)
        result = simulator.run(until=50)
        # The centre's multicast to 4 leaves counts once.
        assert result.costs.communication_cost == 1
        assert result.costs.wireless_transmissions == 3

    def test_time_cost_matches_chain_depth(self):
        topo = chain_topology(5)
        simulator, _ = build_simulator(topo)
        result = simulator.run(until=50)
        assert result.costs.time_cost == 4


class TestTimers:
    def test_timers_fire_in_order_with_data(self):
        topo = chain_topology(1)
        host = TimerHost(0)
        simulator, _ = build_simulator(topo, hosts=[host])
        simulator.run(until=10)
        assert host.fired == [(1.5, "a", "first"), (3.0, "b", "second")]

    def test_negative_timer_delay_rejected(self):
        topo = chain_topology(2)

        class BadHost(FloodHost):
            def on_query_start(self, ctx):
                ctx.set_timer(-1.0, "oops")

        simulator, _ = build_simulator(topo, hosts=[BadHost(0), FloodHost(1)])
        with pytest.raises(ValueError):
            simulator.run(until=5)


class TestFailures:
    def test_failed_host_stops_forwarding(self):
        topo = chain_topology(5)
        churn = ChurnSchedule(failures=[(1.5, 2)])
        simulator, hosts = build_simulator(topo, churn=churn)
        simulator.run(until=50)
        # Host 2 fails after receiving (t=2 would be its receive time) --
        # it fails at 1.5 so it never receives; hosts 3, 4 stay unreached.
        assert hosts[1].seen
        assert not hosts[3].seen
        assert not hosts[4].seen

    def test_message_to_failed_host_is_dropped_and_counted(self):
        topo = chain_topology(3)
        churn = ChurnSchedule(failures=[(0.5, 1)])
        simulator, _ = build_simulator(topo, churn=churn)
        result = simulator.run(until=50)
        assert result.costs.dropped_messages >= 1

    def test_failure_callback_invoked(self):
        topo = chain_topology(3)
        churn = ChurnSchedule(failures=[(2.0, 2)])
        simulator, _ = build_simulator(topo, churn=churn)
        observed = []
        simulator.on_host_failure(lambda host, time: observed.append((host, time)))
        simulator.run(until=10)
        assert observed == [(2, 2.0)]

    def test_querying_host_must_be_alive(self):
        topo = chain_topology(3)
        network = topo.to_network()
        network.fail_host(0, time=0.0)
        with pytest.raises(ValueError):
            Simulator(network=network, hosts=[FloodHost(i) for i in range(3)],
                      querying_host=0)


class TestJoins:
    def test_join_event_adds_inert_host(self):
        topo = chain_topology(3)
        from repro.simulation.churn import JoinSpec

        churn = ChurnSchedule(joins=[JoinSpec(time=1.0, neighbors=(0,))])
        simulator, _ = build_simulator(topo, churn=churn)
        simulator.run(until=10)
        assert simulator.network.num_hosts == 4
        assert simulator.network.is_alive(3)


class TestRunControl:
    def test_run_stops_at_horizon(self):
        topo = chain_topology(50)
        simulator, hosts = build_simulator(topo)
        simulator.run(until=5)
        assert hosts[4].seen
        assert not hosts[20].seen

    def test_invalid_parameters_rejected(self):
        topo = chain_topology(3)
        network = topo.to_network()
        hosts = [FloodHost(i) for i in range(3)]
        with pytest.raises(ValueError):
            Simulator(network=network, hosts=hosts[:2], querying_host=0)
        with pytest.raises(ValueError):
            Simulator(network=network, hosts=hosts, querying_host=0, delta=0.0)

    def test_result_reports_querying_host_value(self):
        topo = chain_topology(4)
        simulator, _ = build_simulator(topo)
        result = simulator.run(until=20)
        assert result.value == 0.0  # querying host received at time 0
        assert result.querying_host == 0
