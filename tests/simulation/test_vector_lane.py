"""The opt-in vectorized kernel lane: engagement, fallback, identity.

The heavyweight locks live in the integration matrix (python-vs-vector
differential over the full protocol matrix) and in the perf-smoke bench;
this file pins the lane's *contract*: when it engages, when and why it
falls back to the executable-spec loop, and that small runs are
bit-identical (value, cost fingerprint, declaration time) either way.
"""

import pytest

from repro.core.config import SimulationConfig
from repro.obs.trace import Tracer
from repro.protocols.base import prepare_protocol_run, run_protocol
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.simulation import vector_lane
from repro.simulation.churn import ChurnSchedule, JoinSpec
from repro.simulation.engine import Simulator
from repro.simulation.vector_lane import validate_lane
from repro.topology.grid import grid_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import uniform_values

SEED = 11


def _snapshot(result):
    return {
        "value": result.value,
        "fingerprint": result.costs.fingerprint(),
        "declared_at": result.finished_at,
    }


def _run(lane, query="count", churn=None, wireless=False, delay=None,
         tracer=None, protocol=None, stats="full"):
    topology = random_topology(30, avg_degree=3.0, seed=SEED)
    values = uniform_values(len(topology), low=1, high=50, seed=SEED)
    result = run_protocol(
        protocol or Wildfire(), topology, values, query, querying_host=0,
        churn=churn, wireless=wireless, seed=SEED, delay=delay,
        tracer=tracer, stats=stats, lane=lane)
    return _snapshot(result)


# ----------------------------------------------------------------------
# Lane validation
# ----------------------------------------------------------------------
def test_validate_lane_accepts_known_lanes():
    assert validate_lane("python") == "python"
    assert validate_lane("vector") == "vector"


def test_validate_lane_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel lane"):
        validate_lane("turbo")


def test_simulation_config_validates_lane():
    assert SimulationConfig(lane="vector").lane == "vector"
    with pytest.raises(ValueError, match="unknown kernel lane"):
        SimulationConfig(lane="turbo")


def test_simulator_rejects_unknown_lane():
    topology = grid_topology(3)
    prepared = prepare_protocol_run(
        Wildfire(), topology, [1.0] * len(topology), "min",
        querying_host=0, seed=SEED)
    with pytest.raises(ValueError, match="unknown kernel lane"):
        Simulator(network=topology.to_network(), hosts=prepared.hosts,
                  querying_host=0, lane="turbo")


# ----------------------------------------------------------------------
# Engagement and bit-identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("query", ["min", "max", "count", "sum"])
def test_vector_lane_is_bit_identical(query):
    churn = ChurnSchedule(failures=[(1.0, 7), (2.0, 3), (3.0, 11)])
    before = vector_lane.engagements
    python = _run("python", query=query, churn=churn)
    assert vector_lane.engagements == before  # spec lane never engages
    vector = _run("vector", query=query, churn=churn)
    assert vector_lane.engagements == before + 1
    assert vector_lane.last_fallback_reason is None
    assert vector == python


def test_vector_lane_identical_under_wireless_and_streaming():
    python = _run("python", query="count", wireless=True, stats="streaming")
    vector = _run("vector", query="count", wireless=True, stats="streaming")
    assert vector == python


def test_vector_lane_identical_with_failure_at_time_zero():
    churn = ChurnSchedule(failures=[(0.0, 5)])
    assert (_run("vector", query="min", churn=churn)
            == _run("python", query="min", churn=churn))


def test_lane_used_records_actual_lane():
    topology = grid_topology(4)
    values = [float(i) for i in range(len(topology))]
    for lane, expected in (("python", "python"), ("vector", "vector")):
        prepared = prepare_protocol_run(
            Wildfire(), topology, values, "min", querying_host=0, seed=SEED)
        simulator = Simulator(
            network=topology.to_network(), hosts=prepared.hosts,
            querying_host=0, max_time=prepared.termination * 4 + 16,
            lane=lane)
        assert simulator.lane_used is None
        simulator.run(until=prepared.termination)
        assert simulator.lane_used == expected


# ----------------------------------------------------------------------
# Fallback gating: unsupported runs use the spec loop, with a reason
# ----------------------------------------------------------------------
def _assert_falls_back(reason, **kwargs):
    before = vector_lane.engagements
    vector = _run("vector", **kwargs)
    assert vector_lane.engagements == before
    assert vector_lane.last_fallback_reason == reason
    assert vector == _run("python", **kwargs)


def test_falls_back_on_variable_delay_model():
    _assert_falls_back("variable delay model", delay="uniform:0.25,1.0")


def test_falls_back_when_tracer_attached():
    # Fresh tracer per run: identity is about value/costs, not traces.
    before = vector_lane.engagements
    vector = _run("vector", tracer=Tracer())
    assert vector_lane.engagements == before
    assert vector_lane.last_fallback_reason == "tracer attached"
    assert vector == _run("python", tracer=Tracer())


def test_falls_back_on_join_churn():
    churn = ChurnSchedule(failures=[(2.0, 4)],
                          joins=[JoinSpec(3.0, (0, 1))])
    _assert_falls_back("join churn scheduled", churn=churn)


def test_falls_back_on_unsupported_combiner():
    # FM average carries pair state; the adapter only handles packed
    # bitmask and bare-float states.
    _assert_falls_back("unsupported protocol hosts or combiner",
                       query="avg")


def test_falls_back_on_foreign_protocol_hosts():
    _assert_falls_back("unsupported protocol hosts or combiner",
                       protocol=SpanningTree(), query="count")


def test_falls_back_on_unexpected_pre_queued_events():
    topology = grid_topology(4)
    prepared = prepare_protocol_run(
        Wildfire(), topology, [1.0] * len(topology), "min",
        querying_host=0, seed=SEED)
    simulator = Simulator(
        network=topology.to_network(), hosts=prepared.hosts,
        querying_host=0, max_time=prepared.termination * 4 + 16,
        lane="vector")
    # A driver-pushed timer the lane has no transcription for.
    simulator._queue.push_timer(1.0, 0, "custom-probe", (None, 0))
    before = vector_lane.engagements
    simulator.run(until=prepared.termination)
    assert vector_lane.engagements == before
    assert vector_lane.last_fallback_reason == "unexpected pre-queued events"
    assert simulator.lane_used == "python"
