"""The sharded execution lane: engagement, fallback, shard invariance.

The heavyweight locks live in the integration matrix (python-vs-sharded
differential over the full protocol matrix) and in the shard-smoke
bench; this file pins the lane's *contract*: results are bit-identical
(value, cost fingerprint, declaration time) at every shard count
including the in-process ``K=1`` shard, engagement is observable, and
unsupported runs fall back to the executable-spec loop with a recorded
reason -- both on the module global and on the per-run
``SimulationResult.fallback_reason`` field.
"""

import pytest

from repro.obs.trace import RingTracer, Tracer
from repro.protocols.base import prepare_protocol_run, run_protocol
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.simulation import sharded
from repro.simulation.churn import ChurnSchedule, JoinSpec
from repro.simulation.engine import Simulator
from repro.simulation.vector_lane import validate_lane
from repro.topology.grid import grid_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import uniform_values

SEED = 11


def _snapshot(result):
    return {
        "value": result.value,
        "fingerprint": result.costs.fingerprint(),
        "declared_at": result.finished_at,
    }


def _run(lane, shards=1, query="count", churn=None, wireless=False,
         delay=None, tracer=None, protocol=None, stats="full",
         querying_host=0, num_hosts=30):
    topology = random_topology(num_hosts, avg_degree=3.0, seed=SEED)
    values = uniform_values(len(topology), low=1, high=50, seed=SEED)
    result = run_protocol(
        protocol or Wildfire(), topology, values, query,
        querying_host=querying_host, churn=churn, wireless=wireless,
        seed=SEED, delay=delay, tracer=tracer, stats=stats, lane=lane,
        shards=shards)
    return _snapshot(result)


# ----------------------------------------------------------------------
# Lane validation / plumbing
# ----------------------------------------------------------------------
def test_validate_lane_accepts_sharded():
    assert validate_lane("sharded") == "sharded"


def test_simulator_rejects_non_positive_shards():
    topology = grid_topology(3)
    prepared = prepare_protocol_run(
        Wildfire(), topology, [1.0] * len(topology), "min",
        querying_host=0, seed=SEED)
    with pytest.raises(ValueError, match="shards must be at least 1"):
        Simulator(network=topology.to_network(), hosts=prepared.hosts,
                  querying_host=0, shards=0)


# ----------------------------------------------------------------------
# Shard invariance: K in {1, 2, 4} all match the spec loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("query", ["min", "max", "count", "sum"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_lane_is_bit_identical(query, shards):
    churn = ChurnSchedule(failures=[(1.0, 7), (2.0, 3), (3.0, 11)])
    before = sharded.engagements
    python = _run("python", query=query, churn=churn)
    assert sharded.engagements == before  # spec lane never engages
    result = _run("sharded", shards=shards, query=query, churn=churn)
    assert sharded.engagements == before + 1
    assert sharded.last_fallback_reason is None
    assert result == python


@pytest.mark.parametrize("shards", [1, 3])
def test_sharded_lane_identical_under_wireless_and_streaming(shards):
    python = _run("python", query="count", wireless=True, stats="streaming")
    assert _run("sharded", shards=shards, query="count", wireless=True,
                stats="streaming") == python


def test_sharded_lane_identical_with_failure_at_time_zero():
    churn = ChurnSchedule(failures=[(0.0, 5)])
    assert (_run("sharded", shards=2, query="min", churn=churn)
            == _run("python", query="min", churn=churn))


def test_sharded_lane_identical_when_querying_host_dies():
    # The querying host's shard loses its value owner mid-run; the
    # declared value must still match the spec loop's (the spec also
    # reads the dead host's frozen partial).
    churn = ChurnSchedule(failures=[(2.0, 0)])
    for shards in (1, 2, 4):
        assert (_run("sharded", shards=shards, churn=churn)
                == _run("python", churn=churn))


def test_more_shards_than_hosts_still_identical():
    # Empty shards participate in every barrier and own no hosts.
    assert (_run("sharded", shards=12, num_hosts=8, query="sum")
            == _run("python", num_hosts=8, query="sum"))


def test_lane_used_records_sharded():
    topology = grid_topology(4)
    prepared = prepare_protocol_run(
        Wildfire(), topology, [1.0] * len(topology), "min",
        querying_host=0, seed=SEED)
    simulator = Simulator(
        network=topology.to_network(), hosts=prepared.hosts,
        querying_host=0, max_time=prepared.termination * 4 + 16,
        lane="sharded", shards=2)
    result = simulator.run(until=prepared.termination)
    assert simulator.lane_used == "sharded"
    assert result.fallback_reason is None
    info = result.extra["sharded"]
    assert info["shards"] == 2
    assert len(info["workers"]) == 2
    assert [w["shard"] for w in info["workers"]] == [0, 1]
    assert all(w["epochs"] >= 1 for w in info["workers"])


def test_sharded_result_carries_epoch_timeline():
    from repro.obs.timeline import SAMPLE_FIELDS, ShardTimeline

    topology = random_topology(30, avg_degree=3.0, seed=SEED)
    values = uniform_values(len(topology), low=1, high=50, seed=SEED)
    result = run_protocol(
        Wildfire(), topology, values, "count", querying_host=0,
        seed=SEED, lane="sharded", shards=2)
    assert result.fallback_reason is None
    samples = result.extra["sharded"]["timeline"]
    assert samples, "an engaged run records at least one epoch sample"
    for sample in samples:
        assert set(sample) == set(SAMPLE_FIELDS)
        assert sample["exchange_s"] >= 0.0
        assert sample["compute_s"] >= 0.0
        assert sample["barrier_wait_s"] >= 0.0
    # Each shard's samples cover the same epochs (lockstep barriers),
    # and wall starts are monotone within a shard.
    by_shard = {}
    for sample in samples:
        by_shard.setdefault(sample["shard"], []).append(sample)
    assert set(by_shard) == {0, 1}
    epoch_sets = [sorted(s["epoch"] for s in group)
                  for group in by_shard.values()]
    assert epoch_sets[0] == epoch_sets[1]
    for group in by_shard.values():
        starts = [s["wall_start"] for s in group]
        assert starts == sorted(starts)
    timeline = ShardTimeline.from_run(result)
    assert timeline is not None
    assert timeline.epochs() == len(epoch_sets[0])
    report = timeline.skew_report()
    assert all(row["straggler"] in (0, 1) for row in report)


# ----------------------------------------------------------------------
# Fallback gating: unsupported runs use the spec loop, with a reason
# ----------------------------------------------------------------------
def _assert_falls_back(reason, **kwargs):
    before = sharded.engagements
    result = _run("sharded", shards=2, **kwargs)
    assert sharded.engagements == before
    assert sharded.last_fallback_reason == reason
    assert result == _run("python", **kwargs)


def test_falls_back_on_variable_delay_model():
    _assert_falls_back("variable delay model", delay="uniform:0.25,1.0")


def test_falls_back_on_non_ring_tracer():
    # Per-worker tracing merges raw RingTracer rings over the result
    # pipe; a foreign tracer subclass could observe state the pipe
    # cannot carry, so anything but the exact RingTracer falls back.
    before = sharded.engagements
    result = _run("sharded", shards=2, tracer=Tracer())
    assert sharded.engagements == before
    assert (sharded.last_fallback_reason
            == "unsupported tracer (sharded tracing needs RingTracer)")
    assert result == _run("python", tracer=Tracer())


def test_ring_tracer_engages_and_stays_bit_identical():
    # The tentpole contract: a traced sharded run engages the lane and
    # the digests stay bit-identical to the untraced run, while the
    # merged trace carries one process track per shard with the exact
    # run-wide hook counts.
    churn = ChurnSchedule(failures=[(1.0, 7), (2.0, 3)])
    spec_tracer = RingTracer(capacity=100_000)
    spec = _run("python", churn=churn, tracer=spec_tracer)
    for shards in (1, 2, 4):
        tracer = RingTracer(capacity=100_000)
        before = sharded.engagements
        traced = _run("sharded", shards=shards, churn=churn, tracer=tracer)
        assert sharded.engagements == before + 1
        assert sharded.last_fallback_reason is None
        assert traced == spec
        assert traced == _run("sharded", shards=shards, churn=churn)
        assert dict(tracer.counts) == dict(spec_tracer.counts)
        assert ([p["label"] for p in tracer.processes]
                == [f"shard {k}" for k in range(shards)])
        assert all(p["records"] for p in tracer.processes)


def test_falls_back_on_join_churn():
    churn = ChurnSchedule(failures=[(2.0, 4)],
                          joins=[JoinSpec(3.0, (0, 1))])
    _assert_falls_back("join churn scheduled", churn=churn)


def test_falls_back_on_unsupported_combiner():
    _assert_falls_back("unsupported protocol hosts or combiner",
                       query="avg")


def test_falls_back_on_foreign_protocol_hosts():
    _assert_falls_back("unsupported protocol hosts or combiner",
                       protocol=SpanningTree(), query="count")


def test_fallback_reason_rides_the_simulation_result():
    # The per-run field (satellite of the sharded-lane PR): the reason
    # must reach the caller on the result itself, not only through the
    # deprecated module global.
    topology = random_topology(20, avg_degree=3.0, seed=SEED)
    values = uniform_values(len(topology), low=1, high=50, seed=SEED)
    result = run_protocol(
        Wildfire(), topology, values, "count", querying_host=0,
        seed=SEED, delay="uniform:0.25,1.0", lane="sharded", shards=2)
    assert result.fallback_reason == "variable delay model"
    engaged = run_protocol(
        Wildfire(), topology, values, "count", querying_host=0,
        seed=SEED, lane="sharded", shards=2)
    assert engaged.fallback_reason is None
    spec = run_protocol(
        Wildfire(), topology, values, "count", querying_host=0,
        seed=SEED, lane="python")
    assert spec.fallback_reason is None


def test_vector_fallback_reason_rides_the_simulation_result():
    topology = random_topology(20, avg_degree=3.0, seed=SEED)
    values = uniform_values(len(topology), low=1, high=50, seed=SEED)
    result = run_protocol(
        Wildfire(), topology, values, "avg", querying_host=0,
        seed=SEED, lane="vector")
    assert (result.fallback_reason
            == "unsupported protocol hosts or combiner")
