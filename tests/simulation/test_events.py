"""Tests for the event queue."""

import pytest

from repro.simulation.events import EventKind, EventQueue
from repro.simulation.messages import Message


def make_message(sender=0, dest=1):
    return Message(sender=sender, dest=dest, kind="test", payload={})


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.TIMER, host=1, timer_name="b")
        queue.push(1.0, EventKind.TIMER, host=1, timer_name="a")
        queue.push(3.0, EventKind.TIMER, host=1, timer_name="c")
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_broken_by_insertion_order_within_same_kind(self):
        queue = EventQueue()
        first = queue.push(2.0, EventKind.TIMER, host=1, timer_name="first")
        second = queue.push(2.0, EventKind.TIMER, host=2, timer_name="second")
        assert queue.pop().timer_name == "first"
        assert queue.pop().timer_name == "second"
        assert first.seq < second.seq

    def test_deliveries_precede_timers_at_same_instant(self):
        queue = EventQueue()
        queue.push(2.0, EventKind.TIMER, host=1, timer_name="deadline")
        queue.push(2.0, EventKind.DELIVER, message=make_message())
        assert queue.pop().kind is EventKind.DELIVER
        assert queue.pop().kind is EventKind.TIMER

    def test_failures_processed_last_at_same_instant(self):
        queue = EventQueue()
        queue.push(2.0, EventKind.FAIL, host=3)
        queue.push(2.0, EventKind.DELIVER, message=make_message())
        queue.push(2.0, EventKind.TIMER, host=1, timer_name="t")
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == [EventKind.DELIVER, EventKind.TIMER, EventKind.FAIL]

    def test_query_start_runs_before_everything(self):
        queue = EventQueue()
        queue.push(0.0, EventKind.DELIVER, message=make_message())
        queue.push(0.0, EventKind.QUERY_START, host=0)
        assert queue.pop().kind is EventKind.QUERY_START


class TestEventQueueBehaviour:
    def test_len_and_bool(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        queue.push(1.0, EventKind.TIMER, host=0, timer_name="x")
        assert len(queue) == 1
        assert queue

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-0.5, EventKind.TIMER, host=0, timer_name="x")

    def test_pop_empty_raises(self):
        queue = EventQueue()
        with pytest.raises(IndexError):
            queue.pop()

    def test_cancel_skips_event(self):
        queue = EventQueue()
        keep = queue.push(1.0, EventKind.TIMER, host=0, timer_name="keep")
        drop = queue.push(0.5, EventKind.TIMER, host=0, timer_name="drop")
        queue.cancel(drop)
        assert len(queue) == 1
        event = queue.pop()
        assert event.timer_name == "keep"
        assert event.seq == keep.seq

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        drop = queue.push(0.5, EventKind.TIMER, host=0, timer_name="drop")
        queue.push(2.0, EventKind.TIMER, host=0, timer_name="keep")
        queue.cancel(drop)
        assert queue.peek_time() == 2.0

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_drain_yields_all_in_order(self):
        queue = EventQueue()
        for t in (3.0, 1.0, 2.0):
            queue.push(t, EventKind.TIMER, host=0, timer_name=str(t))
        assert [e.time for e in queue.drain()] == [1.0, 2.0, 3.0]
        assert not queue


class TestTieBreakingRegression:
    """Same-timestamp events must drain in deterministic insertion order
    regardless of queue internals (regression for the batched-ring
    rewrite; the original binary heap provided this via (time, priority,
    seq) tuples and the ring must reproduce it exactly)."""

    def test_many_same_time_events_fifo_within_kind(self):
        queue = EventQueue()
        for i in range(200):
            queue.push(7.0, EventKind.TIMER, host=i, timer_name=f"t{i}")
        assert [queue.pop().host for _ in range(200)] == list(range(200))

    def test_interleaved_kinds_at_one_instant_follow_priority_then_fifo(self):
        queue = EventQueue()
        # Push in an adversarial kind order; drain must be priority-major
        # (JOIN < DELIVER < TIMER < FAIL), insertion-minor.
        queue.push(1.0, EventKind.FAIL, host=10)
        queue.push(1.0, EventKind.TIMER, host=20, timer_name="a")
        queue.push(1.0, EventKind.DELIVER, message=make_message(0, 30))
        queue.push(1.0, EventKind.FAIL, host=11)
        queue.push(1.0, EventKind.DELIVER, message=make_message(0, 31))
        queue.push(1.0, EventKind.TIMER, host=21, timer_name="b")
        queue.push(1.0, EventKind.JOIN, data=(1, 2))
        drained = [queue.pop() for _ in range(7)]
        kinds = [e.kind for e in drained]
        assert kinds == [EventKind.JOIN, EventKind.DELIVER, EventKind.DELIVER,
                         EventKind.TIMER, EventKind.TIMER, EventKind.FAIL,
                         EventKind.FAIL]
        assert [e.message.dest for e in drained[1:3]] == [30, 31]
        assert [e.timer_name for e in drained[3:5]] == ["a", "b"]
        assert [e.host for e in drained[5:]] == [10, 11]

    def test_events_pushed_mid_drain_at_same_instant_keep_order(self):
        """A zero-delay timer scheduled while its instant is draining still
        runs within that instant, after already-queued higher-priority
        events -- and a lower-priority-level push never jumps the queue."""
        queue = EventQueue()
        queue.push(2.0, EventKind.DELIVER, message=make_message(0, 1))
        queue.push(2.0, EventKind.TIMER, host=5, timer_name="first")
        assert queue.pop().kind is EventKind.DELIVER
        # Mid-drain: schedule another timer and a delivery at time 2.0.
        queue.push(2.0, EventKind.TIMER, host=6, timer_name="second")
        queue.push(2.0, EventKind.DELIVER, message=make_message(0, 2))
        # The late delivery outranks both timers; timers stay FIFO.
        assert queue.pop().message.dest == 2
        assert queue.pop().timer_name == "first"
        assert queue.pop().timer_name == "second"
        assert not queue

    def test_fast_path_delivers_interleave_with_generic_pushes(self):
        queue = EventQueue()
        queue.push_deliver(3.0, make_message(0, 1))
        queue.push(3.0, EventKind.DELIVER, message=make_message(0, 2))
        queue.push_deliver(3.0, make_message(0, 3))
        dests = [queue.pop().message.dest for _ in range(3)]
        assert dests == [1, 2, 3]

    def test_push_multicast_is_drain_identical_to_extend_delivers(self):
        """The lazily expanded batch must interleave exactly like the
        materialised bulk append it replaced, including deliveries and
        timers pushed before, between and after the batch."""
        from repro.simulation.messages import Message

        def fill(queue, use_batch):
            queue.push_deliver(1.0, make_message(9, 100))
            if use_batch:
                queue.push_multicast(1.0, 7, (1, 2, 3), "kind", {"x": 1},
                                     0.0, 2)
            else:
                queue.extend_delivers(1.0, [
                    Message(7, dest, "kind", {"x": 1}, 0.0, 2)
                    for dest in (1, 2, 3)
                ])
            queue.push_timer(1.0, 5, "t", None)
            queue.push_deliver(1.0, make_message(9, 200))

        batched, materialised = EventQueue(), EventQueue()
        fill(batched, True)
        fill(materialised, False)
        assert len(batched) == len(materialised) == 6
        while materialised:
            expected = materialised.pop_due(None)
            got = batched.pop_due(None)
            assert got is not None and expected is not None
            assert got[0] == expected[0]
            if expected[1].__class__ is Message:
                for field in ("sender", "dest", "kind", "payload",
                              "sent_at", "chain_depth", "wireless",
                              "query_id", "vtime"):
                    assert (getattr(got[1], field)
                            == getattr(expected[1], field)), field
            else:
                assert got[1].kind is expected[1].kind
        assert not batched
        assert len(batched) == 0

    def test_push_multicast_with_no_destinations_is_a_noop(self):
        queue = EventQueue()
        queue.push_multicast(1.0, 7, (), "kind", {}, 0.0, 1)
        assert len(queue) == 0
        assert queue.pop_due(None) is None

    def test_fuzz_matches_reference_heap_order(self):
        """Randomized differential test against the original heap
        semantics: order by (time, kind priority, global insertion seq)."""
        import heapq
        import itertools
        import random as stdlib_random

        from repro.simulation.events import _KIND_PRIORITY

        rng = stdlib_random.Random(1234)
        kinds = list(_KIND_PRIORITY)
        for _ in range(20):
            queue = EventQueue()
            reference = []
            counter = itertools.count()
            labels = iter(range(10_000))
            # Random pushes, interleaved with partial drains.
            for _ in range(rng.randrange(5, 60)):
                time = rng.choice([0.0, 1.0, 1.0, 2.0, 2.5, 3.0])
                kind = rng.choice(kinds)
                label = next(labels)
                queue.push(time, kind, host=label)
                heapq.heappush(
                    reference,
                    (time, _KIND_PRIORITY[kind], next(counter), label))
                if rng.random() < 0.25 and queue:
                    got = queue.pop()
                    expected = heapq.heappop(reference)
                    assert (got.time, got.priority, got.host) == (
                        expected[0], expected[1], expected[3])
            while queue:
                got = queue.pop()
                expected = heapq.heappop(reference)
                assert (got.time, got.priority, got.host) == (
                    expected[0], expected[1], expected[3])
            assert not reference


class TestOccupancyWindow:
    """``occupancy()``'s horizon/current_epoch fields must be *exact*
    under any interleaving of push / pop / cancel -- they are the window
    the sharded lane's barrier scheduler reasons about, so an off-by-one
    (a cancelled straggler counting, a drained slot lingering) would
    mis-place an epoch barrier."""

    def test_empty_queue_reports_no_window(self):
        occupancy = EventQueue().occupancy()
        assert occupancy["horizon"] is None
        assert occupancy["current_epoch"] is None

    def test_window_tracks_pushes(self):
        queue = EventQueue(width=2.0)
        queue.push(3.0, EventKind.TIMER, host=0, timer_name="t")
        queue.push(7.5, EventKind.TIMER, host=1, timer_name="t")
        occupancy = queue.occupancy()
        assert occupancy["horizon"] == 7.5
        assert occupancy["current_epoch"] == int(3.0 / 2.0)

    def test_pop_advances_the_window_front(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.TIMER, host=0, timer_name="t")
        queue.push(2.0, EventKind.TIMER, host=1, timer_name="t")
        queue.pop()
        occupancy = queue.occupancy()
        assert occupancy["horizon"] == 2.0
        assert occupancy["current_epoch"] == 2

    def test_cancelled_events_never_count(self):
        queue = EventQueue()
        keep = queue.push(1.0, EventKind.TIMER, host=0, timer_name="t")
        tail = queue.push(9.0, EventKind.TIMER, host=1, timer_name="t")
        queue.cancel(tail)
        occupancy = queue.occupancy()
        # The cancelled 9.0 straggler must not stretch the horizon.
        assert occupancy["horizon"] == 1.0
        assert occupancy["current_epoch"] == 1
        queue.cancel(keep)
        occupancy = queue.occupancy()
        assert occupancy["horizon"] is None
        assert occupancy["current_epoch"] is None

    def test_fuzz_exact_under_push_pop_cancel_interleaving(self):
        import random as stdlib_random

        rng = stdlib_random.Random(99)
        for width in (1.0, 2.5):
            queue = EventQueue(width=width)
            live = []  # (time, event) pairs still live in the queue
            for _ in range(400):
                action = rng.random()
                if action < 0.5 or not live:
                    time = float(rng.randrange(0, 40)) / 4.0
                    event = queue.push(time, EventKind.TIMER,
                                       host=rng.randrange(8),
                                       timer_name="t")
                    live.append((time, event))
                elif action < 0.75:
                    popped = queue.pop()
                    expected_time, _ = min(live, key=lambda p: p[0])
                    assert popped.time == expected_time
                    for index, (_, event) in enumerate(live):
                        if event is popped:
                            live.pop(index)
                            break
                else:
                    index = rng.randrange(len(live))
                    _, event = live.pop(index)
                    queue.cancel(event)
                occupancy = queue.occupancy()
                if not live:
                    assert occupancy["horizon"] is None
                    assert occupancy["current_epoch"] is None
                else:
                    times = [t for t, _ in live]
                    assert occupancy["horizon"] == max(times)
                    assert (occupancy["current_epoch"]
                            == int(min(times) / width))


class TestDrainIngestRoundTrip:
    """``drain_until`` + ``ingest_events`` must round-trip exactly --
    the sharded coordinator drains the primed queue to inspect it and
    pushes it back verbatim whenever it declines to engage."""

    def _primed_queue(self):
        queue = EventQueue()
        queue.push(0.0, EventKind.QUERY_START, host=3)
        queue.push(1.5, EventKind.FAIL, host=4)
        queue.push_deliver(1.0, make_message(sender=1, dest=2))
        queue.push_multicast(1.0, 0, (5, 6), "kind", {"x": 1}, 0.5, 2)
        queue.push(2.0, EventKind.TIMER, host=7, timer_name="flush",
                   data=(None, 0))
        return queue

    def _drain_signature(self, queue):
        out = []
        while True:
            front = queue.pop_due(None)
            if front is None:
                return out
            time, entry = front
            if isinstance(entry, Message):
                out.append((time, "msg", entry.sender, entry.dest,
                            entry.kind, entry.chain_depth))
            else:
                out.append((time, entry.kind, entry.host,
                            entry.timer_name))

    def test_round_trip_preserves_drain_order(self):
        drained = self._primed_queue().drain_until(None)
        assert len(drained) == 6  # the multicast expands to two messages
        restored = self._primed_queue()
        batch = restored.drain_until(None)
        restored.ingest_events(batch)
        assert (self._drain_signature(restored)
                == self._drain_signature(self._primed_queue()))

    def test_drain_until_respects_the_horizon(self):
        queue = self._primed_queue()
        drained = queue.drain_until(1.0)
        assert [time for time, _ in drained] == [0.0, 1.0, 1.0, 1.0]
        assert len(queue) == 2  # the 1.5 FAIL and the 2.0 timer stay
        occupancy = queue.occupancy()
        assert occupancy["horizon"] == 2.0
