"""Tests for the event queue."""

import pytest

from repro.simulation.events import EventKind, EventQueue
from repro.simulation.messages import Message


def make_message(sender=0, dest=1):
    return Message(sender=sender, dest=dest, kind="test", payload={})


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.TIMER, host=1, timer_name="b")
        queue.push(1.0, EventKind.TIMER, host=1, timer_name="a")
        queue.push(3.0, EventKind.TIMER, host=1, timer_name="c")
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_broken_by_insertion_order_within_same_kind(self):
        queue = EventQueue()
        first = queue.push(2.0, EventKind.TIMER, host=1, timer_name="first")
        second = queue.push(2.0, EventKind.TIMER, host=2, timer_name="second")
        assert queue.pop().timer_name == "first"
        assert queue.pop().timer_name == "second"
        assert first.seq < second.seq

    def test_deliveries_precede_timers_at_same_instant(self):
        queue = EventQueue()
        queue.push(2.0, EventKind.TIMER, host=1, timer_name="deadline")
        queue.push(2.0, EventKind.DELIVER, message=make_message())
        assert queue.pop().kind is EventKind.DELIVER
        assert queue.pop().kind is EventKind.TIMER

    def test_failures_processed_last_at_same_instant(self):
        queue = EventQueue()
        queue.push(2.0, EventKind.FAIL, host=3)
        queue.push(2.0, EventKind.DELIVER, message=make_message())
        queue.push(2.0, EventKind.TIMER, host=1, timer_name="t")
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == [EventKind.DELIVER, EventKind.TIMER, EventKind.FAIL]

    def test_query_start_runs_before_everything(self):
        queue = EventQueue()
        queue.push(0.0, EventKind.DELIVER, message=make_message())
        queue.push(0.0, EventKind.QUERY_START, host=0)
        assert queue.pop().kind is EventKind.QUERY_START


class TestEventQueueBehaviour:
    def test_len_and_bool(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        queue.push(1.0, EventKind.TIMER, host=0, timer_name="x")
        assert len(queue) == 1
        assert queue

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-0.5, EventKind.TIMER, host=0, timer_name="x")

    def test_pop_empty_raises(self):
        queue = EventQueue()
        with pytest.raises(IndexError):
            queue.pop()

    def test_cancel_skips_event(self):
        queue = EventQueue()
        keep = queue.push(1.0, EventKind.TIMER, host=0, timer_name="keep")
        drop = queue.push(0.5, EventKind.TIMER, host=0, timer_name="drop")
        queue.cancel(drop)
        assert len(queue) == 1
        event = queue.pop()
        assert event.timer_name == "keep"
        assert event.seq == keep.seq

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        drop = queue.push(0.5, EventKind.TIMER, host=0, timer_name="drop")
        queue.push(2.0, EventKind.TIMER, host=0, timer_name="keep")
        queue.cancel(drop)
        assert queue.peek_time() == 2.0

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_drain_yields_all_in_order(self):
        queue = EventQueue()
        for t in (3.0, 1.0, 2.0):
            queue.push(t, EventKind.TIMER, host=0, timer_name=str(t))
        assert [e.time for e in queue.drain()] == [1.0, 2.0, 3.0]
        assert not queue
