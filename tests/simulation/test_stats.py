"""Tests for cost accounting."""

from repro.simulation.stats import CostAccounting


class TestCostAccounting:
    def test_initially_zero(self):
        costs = CostAccounting()
        assert costs.communication_cost == 0
        assert costs.computation_cost == 0
        assert costs.time_cost == 0

    def test_record_send_counts_messages_and_time_buckets(self):
        costs = CostAccounting()
        costs.record_send("broadcast", time=1.0)
        costs.record_send("broadcast", time=1.0)
        costs.record_send("report", time=2.0)
        assert costs.communication_cost == 3
        assert costs.messages_per_instant() == {1.0: 2, 2.0: 1}
        assert costs.messages_by_kind["broadcast"] == 2

    def test_wireless_group_counts_once(self):
        costs = CostAccounting()
        costs.record_send("broadcast", time=0.0, wireless_group=False)
        costs.record_send("broadcast", time=0.0, wireless_group=True)
        costs.record_send("broadcast", time=0.0, wireless_group=True)
        assert costs.communication_cost == 1
        assert costs.wireless_transmissions == 2

    def test_computation_cost_is_max_over_hosts(self):
        costs = CostAccounting()
        for _ in range(3):
            costs.record_processed(7, chain_depth=1)
        costs.record_processed(8, chain_depth=1)
        assert costs.computation_cost == 3
        assert costs.messages_processed[7] == 3

    def test_time_cost_is_max_chain_depth(self):
        costs = CostAccounting()
        costs.record_processed(0, chain_depth=4)
        costs.record_processed(1, chain_depth=2)
        assert costs.time_cost == 4

    def test_computation_histogram(self):
        costs = CostAccounting()
        costs.record_processed(0, 1)
        costs.record_processed(0, 1)
        costs.record_processed(1, 1)
        histogram = costs.computation_histogram()
        assert histogram == {2: 1, 1: 1}

    def test_dropped_messages_counted(self):
        costs = CostAccounting()
        costs.record_dropped()
        costs.record_dropped()
        assert costs.dropped_messages == 2

    def test_summary_contains_all_measures(self):
        costs = CostAccounting()
        costs.record_send("x", 0.0)
        costs.record_processed(0, 2)
        summary = costs.summary()
        assert summary["communication_cost"] == 1
        assert summary["computation_cost"] == 1
        assert summary["time_cost"] == 2

    def test_merge_combines_accumulators(self):
        a = CostAccounting()
        b = CostAccounting()
        a.record_send("x", 0.0)
        b.record_send("x", 1.0)
        b.record_processed(3, 5)
        a.merge(b)
        assert a.communication_cost == 2
        assert a.computation_cost == 1
        assert a.time_cost == 5
        assert a.messages_per_instant() == {0.0: 1, 1.0: 1}
