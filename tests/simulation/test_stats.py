"""Tests for cost accounting (full and streaming sinks)."""

import random

import pytest

from repro.simulation.stats import (
    CostAccounting,
    StatsSink,
    StreamingCostAccounting,
    default_stats_mode,
    make_stats_sink,
    set_default_stats_mode,
)


class TestCostAccounting:
    def test_initially_zero(self):
        costs = CostAccounting()
        assert costs.communication_cost == 0
        assert costs.computation_cost == 0
        assert costs.time_cost == 0

    def test_record_send_counts_messages_and_time_buckets(self):
        costs = CostAccounting()
        costs.record_send("broadcast", time=1.0)
        costs.record_send("broadcast", time=1.0)
        costs.record_send("report", time=2.0)
        assert costs.communication_cost == 3
        assert costs.messages_per_instant() == {1.0: 2, 2.0: 1}
        assert costs.messages_by_kind["broadcast"] == 2

    def test_wireless_group_counts_once(self):
        costs = CostAccounting()
        costs.record_send("broadcast", time=0.0, wireless_group=False)
        costs.record_send("broadcast", time=0.0, wireless_group=True)
        costs.record_send("broadcast", time=0.0, wireless_group=True)
        assert costs.communication_cost == 1
        assert costs.wireless_transmissions == 2

    def test_computation_cost_is_max_over_hosts(self):
        costs = CostAccounting()
        for _ in range(3):
            costs.record_processed(7, chain_depth=1)
        costs.record_processed(8, chain_depth=1)
        assert costs.computation_cost == 3
        assert costs.messages_processed[7] == 3

    def test_time_cost_is_max_chain_depth(self):
        costs = CostAccounting()
        costs.record_processed(0, chain_depth=4)
        costs.record_processed(1, chain_depth=2)
        assert costs.time_cost == 4

    def test_computation_histogram(self):
        costs = CostAccounting()
        costs.record_processed(0, 1)
        costs.record_processed(0, 1)
        costs.record_processed(1, 1)
        histogram = costs.computation_histogram()
        assert histogram == {2: 1, 1: 1}

    def test_dropped_messages_counted(self):
        costs = CostAccounting()
        costs.record_dropped()
        costs.record_dropped()
        assert costs.dropped_messages == 2

    def test_summary_contains_all_measures(self):
        costs = CostAccounting()
        costs.record_send("x", 0.0)
        costs.record_processed(0, 2)
        summary = costs.summary()
        assert summary["communication_cost"] == 1
        assert summary["computation_cost"] == 1
        assert summary["time_cost"] == 2

    def test_merge_combines_accumulators(self):
        a = CostAccounting()
        b = CostAccounting()
        a.record_send("x", 0.0)
        b.record_send("x", 1.0)
        b.record_processed(3, 5)
        a.merge(b)
        assert a.communication_cost == 2
        assert a.computation_cost == 1
        assert a.time_cost == 5
        assert a.messages_per_instant() == {0.0: 1, 1.0: 1}

    def test_sends_are_bucketed_by_clock_tick(self):
        """Raw float send times from a variable-delay run collapse onto
        the tick grid, keyed by the tick's start time."""
        costs = CostAccounting(tick_width=1.0)
        costs.record_send("x", 0.4)
        costs.record_send("x", 0.9)
        costs.record_send("x", 1.0)
        costs.record_send_batch("x", 1.6, 2)
        assert costs.messages_per_instant() == {0.0: 2, 1.0: 3}
        # Accumulated float drift just below a boundary still lands in
        # the intended bucket.
        drifty = CostAccounting(tick_width=1.0)
        drifty.record_send("x", 2.9999999996)
        assert drifty.messages_per_instant() == {3.0: 1}

    def test_tick_bucketing_is_identity_under_fixed_delay_times(self):
        """Fixed-delay runs only send at multiples of delta, so tick
        bucketing must not change keys (the golden snapshots pin this)."""
        costs = CostAccounting(tick_width=1.0)
        for time in (0.0, 1.0, 7.0, 13.0):
            costs.record_send("x", time)
        assert sorted(costs.messages_per_instant()) == [0.0, 1.0, 7.0, 13.0]


def _drive(sink: StatsSink, seed: int = 4, hosts: int = 50,
           events: int = 400) -> StatsSink:
    """Feed one synthetic event stream into a sink (same for any sink)."""
    rng = random.Random(seed)
    for _ in range(events):
        roll = rng.random()
        time = rng.random() * 12.0
        if roll < 0.45:
            sink.record_send(rng.choice("abc"), time)
        elif roll < 0.6:
            sink.record_send_batch(rng.choice("abc"), time, rng.randrange(5))
        elif roll < 0.65:
            sink.record_send(rng.choice("abc"), time, wireless_group=True)
        elif roll < 0.7:
            sink.record_wireless_group(rng.randrange(3))
        elif roll < 0.95:
            sink.record_processed(rng.randrange(hosts), rng.randrange(9))
        else:
            sink.record_dropped()
    return sink


class TestStreamingCostAccounting:
    def test_matches_full_accounting_on_any_event_stream(self):
        full = _drive(CostAccounting())
        streaming = _drive(StreamingCostAccounting(num_hosts=50))
        assert streaming.summary() == full.summary()
        assert streaming.computation_histogram() == full.computation_histogram()
        assert streaming.messages_per_instant() == full.messages_per_instant()
        assert dict(full.messages_by_kind) == streaming.messages_by_kind

    def test_footprint_is_much_smaller_than_full(self):
        """In the regime that matters -- most hosts touched, as in any
        protocol run -- the packed array is >5x below the Counter."""
        full = _drive(CostAccounting(), hosts=5000, events=20_000)
        streaming = _drive(StreamingCostAccounting(num_hosts=5000),
                           hosts=5000, events=20_000)
        assert streaming.footprint_bytes() * 5 < full.footprint_bytes()

    def test_memory_is_bounded_by_hosts_and_ticks_not_traffic(self):
        sink = StreamingCostAccounting(num_hosts=100, tick_width=1.0)
        sink.record_processed(7, 1)
        sink.record_send("x", 9.5)
        before = sink.footprint_bytes()
        for _ in range(10_000):
            sink.record_processed(7, 1)
            sink.record_send("x", 9.5)
        assert sink.footprint_bytes() == before

    def test_growth_allocates_elements_not_bytes(self):
        """Regression: array growth must append zero *elements*, not one
        element per zero byte (which would 4-8x the footprint)."""
        sink = StreamingCostAccounting(num_hosts=0, tick_width=1.0)
        sink.record_send("x", 9.5)
        assert len(sink._by_tick) == 10
        sink.record_processed(4, 0)
        assert len(sink._processed) == 5

    def test_joined_hosts_grow_the_processed_array(self):
        sink = StreamingCostAccounting(num_hosts=3)
        sink.record_processed(10, 2)  # a host joined after construction
        sink.record_processed(10, 2)
        assert sink.computation_cost == 2
        assert sink.computation_histogram() == {2: 1}

    def test_running_max_tracks_computation_cost(self):
        sink = StreamingCostAccounting(num_hosts=4)
        for _ in range(3):
            sink.record_processed(1, 0)
        sink.record_processed(2, 0)
        assert sink.computation_cost == 3
        assert sink.time_cost == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            StreamingCostAccounting(num_hosts=-1)
        with pytest.raises(ValueError):
            StreamingCostAccounting(tick_width=0.0)


class TestMakeStatsSink:
    def test_modes_and_passthrough(self):
        assert isinstance(make_stats_sink("full"), CostAccounting)
        streaming = make_stats_sink("streaming", num_hosts=7, tick_width=2.0)
        assert isinstance(streaming, StreamingCostAccounting)
        assert streaming.tick_width == 2.0
        ready = CostAccounting()
        assert make_stats_sink(ready) is ready
        with pytest.raises(ValueError):
            make_stats_sink("verbose")

    def test_none_uses_the_process_default(self):
        assert default_stats_mode() == "full"
        previous = set_default_stats_mode("streaming")
        try:
            assert previous == "full"
            assert isinstance(make_stats_sink(None), StreamingCostAccounting)
            # An explicit mode still wins over the default.
            assert isinstance(make_stats_sink("full"), CostAccounting)
        finally:
            set_default_stats_mode(previous)
        assert isinstance(make_stats_sink(None), CostAccounting)

    def test_default_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_default_stats_mode("bogus")
