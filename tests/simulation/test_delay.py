"""Tests for the pluggable link-delay models.

The load-bearing invariants:

* every sample of every model lies in ``(0, bound]`` (the network model's
  contract; protocol validity proofs assume it) -- property-tested with
  hypothesis across models, bounds, endpoints and times;
* the ``fixed`` spec resolves to the engine's fast path and replays the
  pre-delay-model kernel bit-identically (differential tests below plus
  the golden snapshot suite);
* per-edge latencies are deterministic, symmetric, and independent of
  traffic order.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.delay import (
    DELAY_MODELS,
    DelayModel,
    FixedDelay,
    HeavyTailDelay,
    PerEdgeDelay,
    UniformDelay,
    delay_model_from_spec,
)


def _models(bound: float, seed: int):
    return [
        FixedDelay(bound),
        UniformDelay(bound, seed=seed),
        UniformDelay(bound, lo=0.01, hi=0.02, seed=seed),
        PerEdgeDelay(bound, seed=seed),
        PerEdgeDelay(bound, lo=0.5, hi=1.0, seed=seed),
        HeavyTailDelay(bound, seed=seed),
        HeavyTailDelay(bound, alpha=0.4, xm=0.01, seed=seed),
        HeavyTailDelay(bound, alpha=5.0, xm=0.9, seed=seed),
    ]


class TestSampleRange:
    @settings(max_examples=200, deadline=None)
    @given(
        bound=st.floats(min_value=1e-6, max_value=1e6,
                        allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**32),
        sender=st.integers(min_value=0, max_value=10**6),
        dest=st.integers(min_value=0, max_value=10**6),
        now=st.floats(min_value=0.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False),
    )
    def test_every_model_samples_in_half_open_bound_interval(
            self, bound, seed, sender, dest, now):
        """Every DelayModel sample lies in (0, delta]."""
        for model in _models(bound, seed):
            for _ in range(3):
                delay = model.sample(sender, dest, now)
                assert 0.0 < delay <= bound, (
                    f"{type(model).__name__} sampled {delay} outside "
                    f"(0, {bound}]"
                )

    def test_fixed_always_returns_the_bound(self):
        model = FixedDelay(2.5)
        assert all(model.sample(a, b, t) == 2.5
                   for a in (0, 7) for b in (1, 9) for t in (0.0, 3.3))

    def test_heavy_tail_is_heavy(self):
        """Most samples are far below the bound, but the tail reaches it."""
        model = HeavyTailDelay(1.0, alpha=1.2, xm=0.05, seed=1)
        samples = [model.sample(0, 1, 0.0) for _ in range(2000)]
        assert sorted(samples)[len(samples) // 2] < 0.25  # median is small
        assert max(samples) > 0.5                          # tail is long


class TestDeterminism:
    def test_reseed_replays_the_stream(self):
        for make in (UniformDelay, HeavyTailDelay):
            model = make(1.0, seed=5)
            first = [model.sample(0, 1, 0.0) for _ in range(10)]
            model.reseed(5)
            assert [model.sample(0, 1, 0.0) for _ in range(10)] == first

    def test_per_edge_is_symmetric_and_traffic_order_independent(self):
        model = PerEdgeDelay(1.0, seed=3)
        forward = model.sample(2, 9, 0.0)
        assert model.sample(9, 2, 5.0) == forward  # both directions share it
        # A fresh model queried in a different order gives the same map.
        other = PerEdgeDelay(1.0, seed=3)
        other.sample(4, 4000, 0.0)
        assert other.sample(2, 9, 1.0) == forward

    def test_per_edge_reseed_changes_the_map(self):
        model = PerEdgeDelay(1.0, seed=3)
        before = model.sample(0, 1, 0.0)
        model.reseed(4)
        assert model.sample(0, 1, 0.0) != before


class TestSpecParsing:
    def test_fixed_and_none_resolve_to_fast_path(self):
        assert delay_model_from_spec(None, 1.0) is None
        assert delay_model_from_spec("fixed", 1.0) is None
        assert delay_model_from_spec(FixedDelay(1.0), 1.0) is None

    def test_spec_strings_build_models_with_arguments(self):
        model = delay_model_from_spec("uniform:0.5,0.75", 2.0, seed=7)
        assert isinstance(model, UniformDelay)
        assert (model.lo, model.hi, model.bound) == (0.5, 0.75, 2.0)
        tail = delay_model_from_spec("heavy_tail:1.5,0.1", 1.0)
        assert isinstance(tail, HeavyTailDelay)
        assert (tail.alpha, tail.xm) == (1.5, 0.1)
        assert isinstance(delay_model_from_spec("per_edge", 1.0), PerEdgeDelay)

    def test_model_instances_pass_through_with_matching_bound(self):
        model = UniformDelay(3.0)
        assert delay_model_from_spec(model, 3.0) is model
        with pytest.raises(ValueError):
            delay_model_from_spec(model, 1.0)

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            delay_model_from_spec("warp", 1.0)
        with pytest.raises(ValueError):
            delay_model_from_spec("uniform:zero,one", 1.0)
        with pytest.raises(ValueError):
            delay_model_from_spec("uniform:0.1,0.2,5", 1.0)  # arg overflow
        with pytest.raises(ValueError):
            delay_model_from_spec("uniform:0.9,0.1", 1.0)  # lo > hi
        with pytest.raises(ValueError):
            UniformDelay(1.0, lo=0.0)                      # zero delay
        with pytest.raises(ValueError):
            HeavyTailDelay(1.0, alpha=-1.0)
        with pytest.raises(ValueError):
            FixedDelay(0.0)

    def test_registry_covers_the_documented_models(self):
        assert set(DELAY_MODELS) == {"fixed", "uniform", "per_edge",
                                     "heavy_tail"}


class TestFixedDelayDifferential:
    """``fixed`` must replay the fixed-delay kernel identically."""

    def _full_run(self, delay):
        from repro.protocols.base import run_protocol
        from repro.protocols.wildfire import Wildfire
        from repro.simulation.churn import uniform_failure_schedule
        from repro.topology.random_graph import random_topology

        topology = random_topology(40, seed=11)
        values = [float(i % 9 + 1) for i in range(40)]
        churn = uniform_failure_schedule(
            candidates=list(range(40)), num_failures=4,
            start=0.5, end=5.0, seed=11, protect=[0])
        return run_protocol(Wildfire(), topology, values, "min",
                            querying_host=0, churn=churn, seed=11,
                            delay=delay)

    @staticmethod
    def _fingerprint(result):
        costs = result.costs
        return (
            result.value, result.finished_at,
            costs.messages_sent, costs.dropped_messages,
            costs.max_chain_depth,
            sorted(costs.messages_processed.items()),
            sorted(costs.messages_by_time.items()),
            sorted(costs.messages_by_kind.items()),
        )

    def test_fixed_spec_matches_default_run_exactly(self):
        baseline = self._fingerprint(self._full_run(None))
        assert self._fingerprint(self._full_run("fixed")) == baseline
        assert self._fingerprint(
            self._full_run(FixedDelay(1.0))) == baseline

    def test_degenerate_uniform_matches_fixed_event_for_event(self):
        """uniform(1, 1) realises exactly the bound for every message, so a
        randomness-free query must replay the fixed-delay run exactly --
        the strongest end-to-end check that the variable-delay scheduling
        path orders events like the fixed fast path."""
        baseline = self._fingerprint(self._full_run(None))
        degenerate = self._fingerprint(self._full_run("uniform:1.0,1.0"))
        assert degenerate == baseline

    def test_delay_models_do_not_consume_protocol_randomness(self):
        """Stochastic delay models draw from their own seed-derived
        stream, so at one seed every delay column shares the hosts' FM
        sketch coins: a static WILDFIRE count -- whose sketches fully
        converge regardless of timing -- must declare the *same* estimate
        under fixed and variable delay (column differences in a sweep are
        then attributable to timing alone)."""
        from repro.protocols.base import run_protocol
        from repro.protocols.wildfire import Wildfire
        from repro.topology.random_graph import random_topology

        topology = random_topology(100, avg_degree=6.0, seed=7)
        values = [1.0] * 100
        declared = {
            delay: run_protocol(Wildfire(), topology, values, "count",
                                seed=1, delay=delay).value
            for delay in (None, "uniform:0.25,1.0", "heavy_tail:1.2")
        }
        assert len(set(declared.values())) == 1, declared


class TestCalendarQueueFuzz:
    """The calendar generalisation must keep the (time, priority, seq)
    total order for arbitrary float timestamps (the variable-delay
    regime) and for every calendar width."""

    def test_fuzz_random_float_times_match_reference_heap(self):
        import heapq
        import itertools

        from repro.simulation.events import (
            EventKind, EventQueue, _KIND_PRIORITY)

        rng = random.Random(20260730)
        kinds = list(_KIND_PRIORITY)
        for width in (0.125, 0.5, 1.0, 3.0, 100.0):
            for _ in range(10):
                queue = EventQueue(width=width)
                reference = []
                counter = itertools.count()
                labels = iter(range(100_000))
                for _ in range(rng.randrange(10, 120)):
                    # Mix unique float times with exact repeats.
                    if rng.random() < 0.3:
                        time = rng.choice([0.0, 1.0, 2.0, 2.5])
                    else:
                        time = rng.random() * 8.0
                    kind = rng.choice(kinds)
                    label = next(labels)
                    queue.push(time, kind, host=label)
                    heapq.heappush(
                        reference,
                        (time, _KIND_PRIORITY[kind], next(counter), label))
                    if rng.random() < 0.3 and queue:
                        got = queue.pop()
                        expected = heapq.heappop(reference)
                        assert (got.time, got.priority, got.host) == (
                            expected[0], expected[1], expected[3])
                while queue:
                    got = queue.pop()
                    expected = heapq.heappop(reference)
                    assert (got.time, got.priority, got.host) == (
                        expected[0], expected[1], expected[3])
                assert not reference

    def test_width_does_not_change_drain_order(self):
        from repro.simulation.events import EventKind, EventQueue

        rng = random.Random(99)
        pushes = [(rng.random() * 10.0, i) for i in range(300)]
        orders = []
        for width in (0.01, 1.0, 50.0):
            queue = EventQueue(width=width)
            for time, label in pushes:
                queue.push(time, EventKind.TIMER, host=label)
            orders.append([event.host for event in queue.drain()])
        assert orders[0] == orders[1] == orders[2]

    def test_width_must_be_positive(self):
        from repro.simulation.events import EventQueue

        with pytest.raises(ValueError):
            EventQueue(width=0.0)


class TestPartitionIndependence:
    """Per-host seed streams (satellite of the sharded-lane PR): a model
    flagged ``partition_independent`` must hand every sender a stream
    that depends only on ``(seed, sender)`` -- never on which other
    senders sampled, or in what order.  That is exactly the property a
    range-partitioned execution needs: a worker owning any subset of the
    senders replays each sender's stream bit-for-bit."""

    def test_flags(self):
        assert FixedDelay(1.0).partition_independent
        assert PerEdgeDelay(1.0, seed=1).partition_independent
        assert not UniformDelay(1.0, seed=1).partition_independent
        assert UniformDelay(1.0, seed=1, per_host=True).partition_independent
        assert not HeavyTailDelay(1.0, seed=1).partition_independent
        assert HeavyTailDelay(1.0, seed=1,
                              per_host=True).partition_independent

    def test_per_host_spec_survives_round_trip(self):
        model = UniformDelay(1.0, seed=3, per_host=True)
        assert model.spec()["per_host"] is True
        # The shared-stream spec stays byte-identical to the pre-PR form
        # (golden protection: no new key unless the flag is set).
        assert "per_host" not in UniformDelay(1.0, seed=3).spec()
        assert "per_host" not in HeavyTailDelay(1.0, seed=3).spec()

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        num_senders=st.integers(min_value=1, max_value=12),
        shards=st.integers(min_value=1, max_value=6),
        interleave=st.randoms(use_true_random=False),
        make=st.sampled_from([UniformDelay, HeavyTailDelay]),
    )
    def test_per_host_streams_are_invariant_under_partitioning(
            self, seed, num_senders, shards, interleave, make):
        """Draw each sender's stream three ways -- all senders on one
        model in interleaved order, and each sender on the model of the
        contiguous shard that owns it -- and require identical draws."""
        draws_per_sender = 5
        # Reference: one model, senders interleaved in a random order.
        reference_model = make(1.0, seed=seed, per_host=True)
        schedule = [sender for sender in range(num_senders)
                    for _ in range(draws_per_sender)]
        interleave.shuffle(schedule)
        reference = {sender: [] for sender in range(num_senders)}
        for sender in schedule:
            reference[sender].append(
                reference_model.sample(sender, (sender + 1) % 100, 0.0))
        # Partitioned: one model per contiguous shard of the sender
        # range, each seeing only its own senders, in sender order.
        cut = [min(k * num_senders // shards, num_senders)
               for k in range(shards + 1)]
        for k in range(shards):
            shard_model = make(1.0, seed=seed, per_host=True)
            for sender in range(cut[k], cut[k + 1]):
                draws = [shard_model.sample(sender, (sender + 1) % 100, 0.0)
                         for _ in range(draws_per_sender)]
                assert draws == reference[sender], (
                    f"sender {sender}'s stream changed under partitioning")

    def test_reseed_resets_per_host_streams(self):
        model = UniformDelay(1.0, seed=5, per_host=True)
        first = [model.sample(3, 4, 0.0) for _ in range(6)]
        model.sample(7, 8, 0.0)  # a second host's stream, interleaved
        model.reseed(5)
        assert [model.sample(3, 4, 0.0) for _ in range(6)] == first
