"""Cancellation-lifecycle and scheduling-guard tests for the event queue.

Two confirmed bugs are locked down here:

* ``cancel()`` on an already-consumed event used to park the seq in the
  queue's cancelled set forever, so ``len()`` undercounted (and could go
  negative) and ``occupancy()["pending"]`` drifted.  Cancellation of
  consumed/unknown events must be a no-op.
* ``push()`` rejected negative times but the fast paths
  (``push_deliver``/``push_timer``/``extend_delivers``/``push_multicast``)
  silently accepted them.  All five entry points now share one contract.

The hypothesis fuzz interleaves push/pop/cancel (including cancel-after-pop
and double-cancel) and checks ``len``, ``occupancy()["pending"]`` and the
drain order against a reference heap model after every operation.
"""

import heapq
import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulation.events import EventKind, EventQueue, _KIND_PRIORITY
from repro.simulation.messages import Message


# ---------------------------------------------------------------------------
# Regression: cancel of consumed/unknown events is a no-op
# ---------------------------------------------------------------------------

def test_cancel_after_pop_is_noop():
    """The ISSUE repro: push one timer, pop it, cancel it, take len()."""
    queue = EventQueue()
    event = queue.push_timer(1.0, 0, "flush", None)
    queue.pop()
    queue.cancel(event)  # already consumed: must not poison the queue
    assert len(queue) == 0
    assert bool(queue) is False
    assert queue.occupancy()["pending"] == 0
    assert queue.occupancy()["cancelled"] == 0


def test_cancel_after_pop_keeps_len_exact_for_later_events():
    queue = EventQueue()
    consumed = queue.push_timer(1.0, 0, "flush", None)
    queue.pop()
    queue.cancel(consumed)
    queue.push_timer(2.0, 1, "flush", None)
    assert len(queue) == 1  # used to report 0 (and -1 before the push)
    assert queue.pop().host == 1


def test_double_cancel_counts_once():
    queue = EventQueue()
    event = queue.push_timer(1.0, 0, "flush", None)
    queue.push_timer(2.0, 1, "flush", None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 1
    assert queue.occupancy()["cancelled"] == 1
    assert queue.pop().host == 1
    assert len(queue) == 0


def test_cancel_after_lazy_discard_is_noop():
    """Once the drain has discarded a cancelled event, cancelling it again
    (or re-cancelling after it left the queue) must not recount it."""
    queue = EventQueue()
    event = queue.push_timer(1.0, 0, "flush", None)
    queue.push_timer(2.0, 1, "flush", None)
    queue.cancel(event)
    assert queue.pop().host == 1  # drain discards the cancelled event
    queue.cancel(event)
    assert len(queue) == 0
    assert queue.occupancy()["cancelled"] == 0


def test_cancel_foreign_event_is_noop():
    """An event never scheduled on *this* queue cannot disturb its counts."""
    queue = EventQueue()
    other = EventQueue()
    foreign = other.push_timer(1.0, 0, "flush", None)
    queue.push_timer(1.0, 1, "flush", None)
    queue.cancel(foreign)
    assert len(queue) == 1
    assert queue.occupancy()["cancelled"] == 0
    # The foreign queue still drains its (cancelled) event's slot cleanly.
    other.cancel(foreign)
    assert len(other) == 0


def test_cancel_popped_wrapper_of_fast_path_delivery_is_noop():
    """pop() wraps bare fast-path messages in a fresh Event; cancelling
    that wrapper must be a no-op (it was never queued)."""
    queue = EventQueue()
    queue.push_deliver(1.0, Message(0, 1, "QUERY", None))
    wrapper = queue.pop()
    queue.cancel(wrapper)
    assert len(queue) == 0
    assert queue.occupancy()["pending"] == 0


# ---------------------------------------------------------------------------
# Regression: one time-validity contract across all five entry points
# ---------------------------------------------------------------------------

def test_negative_time_rejected_on_every_entry_point():
    queue = EventQueue()
    message = Message(0, 1, "QUERY", None)
    with pytest.raises(ValueError):
        queue.push(-1.0, EventKind.TIMER, host=0)
    with pytest.raises(ValueError):
        queue.push_deliver(-1.0, message)
    with pytest.raises(ValueError):
        queue.push_timer(-5.0, 0, "flush", None)
    with pytest.raises(ValueError):
        queue.extend_delivers(-0.5, [message])
    with pytest.raises(ValueError):
        queue.push_multicast(-2.0, 0, (1, 2), "QUERY", None, 0.0, 1)
    # Nothing leaked into the queue from the rejected calls.
    assert len(queue) == 0
    assert queue.peek_time() is None


def test_zero_time_accepted_on_every_entry_point():
    queue = EventQueue()
    queue.push(0.0, EventKind.QUERY_START, host=0)
    queue.push_deliver(0.0, Message(0, 1, "QUERY", None))
    queue.push_timer(0.0, 0, "flush", None)
    queue.extend_delivers(0.0, [Message(0, 2, "QUERY", None)])
    queue.push_multicast(0.0, 0, (1, 2), "QUERY", None, 0.0, 1)
    assert len(queue) == 6


# ---------------------------------------------------------------------------
# Hypothesis fuzz: interleaved push/pop/cancel vs a reference heap model
# ---------------------------------------------------------------------------

_TIMES = (0.0, 0.5, 1.0, 1.5, 2.5, 7.25)
_KINDS = (EventKind.TIMER, EventKind.CUSTOM, EventKind.FAIL,
          EventKind.DELIVER, EventKind.QUERY_START)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.sampled_from(range(len(_TIMES))),
                  st.sampled_from(range(len(_KINDS)))),
        st.tuples(st.just("deliver"), st.sampled_from(range(len(_TIMES)))),
        st.tuples(st.just("pop")),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63)),
    ),
    min_size=1, max_size=80,
)


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_ops)
def test_interleaved_push_pop_cancel_matches_reference_heap(ops):
    queue = EventQueue(width=1.0)
    counter = itertools.count()
    heap = []            # reference model: (time, priority, seq, label)
    alive = {}           # label -> heap entry still pending in the model
    handles = []         # push-returned events, cancellable by index
    handle_labels = []   # parallel: model label per handle

    def model_pop():
        while heap:
            entry = heapq.heappop(heap)
            if entry[3] in alive:
                del alive[entry[3]]
                return entry
        return None

    def check_counts():
        assert len(queue) == len(alive)
        assert len(queue) >= 0
        assert queue.occupancy()["pending"] == len(alive)

    label_counter = itertools.count()
    for op in ops:
        if op[0] == "push":
            time, kind = _TIMES[op[1]], _KINDS[op[2]]
            label = next(label_counter)
            event = queue.push(time, kind, host=0, data=label)
            seq = next(counter)
            entry = (time, _KIND_PRIORITY[kind], seq, label)
            heapq.heappush(heap, entry)
            alive[label] = entry
            handles.append(event)
            handle_labels.append(label)
        elif op[0] == "deliver":
            # Fast-path bare message: no seq, FIFO position is its order.
            time = _TIMES[op[1]]
            label = next(label_counter)
            queue.push_deliver(time, Message(0, 1, "QUERY", label))
            seq = next(counter)
            entry = (time, _KIND_PRIORITY[EventKind.DELIVER], seq, label)
            heapq.heappush(heap, entry)
            alive[label] = entry
        elif op[0] == "pop":
            expected = model_pop()
            if expected is None:
                with pytest.raises(IndexError):
                    queue.pop()
            else:
                popped = queue.pop()
                got_label = (popped.data if popped.data is not None
                             else popped.message.payload)
                assert popped.time == expected[0]
                assert got_label == expected[3]
        elif op[0] == "cancel":
            if handles:
                index = op[1] % len(handles)
                queue.cancel(handles[index])
                alive.pop(handle_labels[index], None)
        check_counts()

    # Drain whatever is left and require the exact reference order.
    remaining = [model_pop() for _ in range(len(alive))]
    drained = [(event.time,
                event.data if event.data is not None
                else event.message.payload)
               for event in queue.drain()]
    assert drained == [(entry[0], entry[3]) for entry in remaining]
    assert len(queue) == 0
    assert queue.occupancy()["pending"] == 0


# ---------------------------------------------------------------------------
# pop_tick: the vector lane's batch drain
# ---------------------------------------------------------------------------

def test_pop_tick_returns_whole_instant_in_priority_order():
    queue = EventQueue()
    queue.push_timer(1.0, 7, "flush", None)
    queue.push_deliver(1.0, Message(0, 1, "QUERY", "a"))
    queue.push_multicast(1.0, 0, (2, 3), "QUERY", "b", 0.0, 1)
    queue.push(1.0, EventKind.FAIL, host=9)
    queue.push_timer(2.0, 8, "flush", None)

    time, buckets = queue.pop_tick()
    assert time == 1.0
    assert [len(bucket) for bucket in buckets] == [0, 0, 2, 0, 1, 1]
    deliveries = buckets[_KIND_PRIORITY[EventKind.DELIVER]]
    assert deliveries[0].payload == "a"          # bare message first (FIFO)
    assert deliveries[1].dests == (2, 3)         # unexpanded batch record
    assert buckets[_KIND_PRIORITY[EventKind.TIMER]][0].host == 7
    assert buckets[_KIND_PRIORITY[EventKind.FAIL]][0].host == 9
    # Weight accounting: 1 bare + 2 batched + timer + fail consumed.
    assert len(queue) == 1
    assert queue.peek_time() == 2.0


def test_pop_tick_respects_horizon_and_skips_cancelled():
    queue = EventQueue()
    keep = queue.push_timer(3.0, 0, "flush", None)
    dropped = queue.push_timer(3.0, 1, "flush", None)
    queue.cancel(dropped)
    assert queue.pop_tick(horizon=2.0) is None
    assert len(queue) == 1

    time, buckets = queue.pop_tick(horizon=3.0)
    assert time == 3.0
    timers = buckets[_KIND_PRIORITY[EventKind.TIMER]]
    assert [event.host for event in timers] == [0]
    assert len(queue) == 0
    assert queue.occupancy()["cancelled"] == 0
    assert queue.pop_tick() is None
    # The instant's events were consumed: cancelling them now is a no-op.
    queue.cancel(keep)
    assert len(queue) == 0


def test_pop_tick_after_partial_pop_due_returns_remainder():
    queue = EventQueue()
    queue.push_deliver(1.0, Message(0, 1, "QUERY", "first"))
    queue.push_deliver(1.0, Message(0, 2, "QUERY", "second"))
    queue.push_timer(1.0, 5, "flush", None)
    time, first = queue.pop_due(None)
    assert (time, first.payload) == (1.0, "first")

    time, buckets = queue.pop_tick()
    assert time == 1.0
    assert [m.payload for m in buckets[_KIND_PRIORITY[EventKind.DELIVER]]] \
        == ["second"]
    assert [e.host for e in buckets[_KIND_PRIORITY[EventKind.TIMER]]] == [5]
    assert len(queue) == 0
