"""Tests for churn schedules."""

import pytest

from repro.simulation.churn import (
    ChurnSchedule,
    JoinSpec,
    poisson_lifetime_schedule,
    uniform_failure_schedule,
)


class TestChurnSchedule:
    def test_failures_are_sorted_by_time(self):
        schedule = ChurnSchedule(failures=[(5.0, 1), (2.0, 2), (9.0, 3)])
        assert [t for t, _ in schedule.failures] == [2.0, 5.0, 9.0]

    def test_duplicate_failure_rejected(self):
        with pytest.raises(ValueError):
            ChurnSchedule(failures=[(1.0, 4), (2.0, 4)])

    def test_failed_hosts_and_counts(self):
        schedule = ChurnSchedule(failures=[(1.0, 4), (2.0, 5)])
        assert schedule.num_failures == 2
        assert set(schedule.failed_hosts) == {4, 5}

    def test_failures_before(self):
        schedule = ChurnSchedule(failures=[(1.0, 4), (2.0, 5), (3.0, 6)])
        assert schedule.failures_before(2.0) == [4]

    def test_restricted_to_horizon(self):
        schedule = ChurnSchedule(
            failures=[(1.0, 4), (5.0, 5)],
            joins=[JoinSpec(time=2.0, neighbors=(0,)), JoinSpec(time=9.0, neighbors=(1,))],
        )
        restricted = schedule.restricted_to(3.0)
        assert restricted.failed_hosts == [4]
        assert len(restricted.joins) == 1

    def test_empty_schedule(self):
        schedule = ChurnSchedule.empty()
        assert schedule.num_failures == 0
        assert schedule.joins == []


class TestUniformFailureSchedule:
    def test_correct_number_of_failures(self):
        schedule = uniform_failure_schedule(range(100), 10, start=1.0, end=9.0, seed=3)
        assert schedule.num_failures == 10

    def test_failures_spread_across_interval(self):
        schedule = uniform_failure_schedule(range(100), 5, start=2.0, end=10.0, seed=3)
        times = [t for t, _ in schedule.failures]
        assert times[0] == pytest.approx(2.0)
        assert times[-1] == pytest.approx(10.0)
        assert all(times[i] <= times[i + 1] for i in range(len(times) - 1))

    def test_protected_hosts_never_fail(self):
        schedule = uniform_failure_schedule(range(20), 19, start=0.0, end=1.0,
                                            seed=0, protect=[0])
        assert 0 not in schedule.failed_hosts

    def test_zero_failures_gives_empty_schedule(self):
        schedule = uniform_failure_schedule(range(10), 0, start=0.0, end=1.0)
        assert schedule.num_failures == 0

    def test_single_failure_placed_mid_interval(self):
        schedule = uniform_failure_schedule(range(10), 1, start=0.0, end=10.0, seed=1)
        assert schedule.failures[0][0] == pytest.approx(5.0)

    def test_too_many_failures_rejected(self):
        with pytest.raises(ValueError):
            uniform_failure_schedule(range(5), 6, start=0.0, end=1.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            uniform_failure_schedule(range(5), 1, start=2.0, end=1.0)

    def test_deterministic_for_fixed_seed(self):
        a = uniform_failure_schedule(range(50), 5, 0.0, 10.0, seed=11)
        b = uniform_failure_schedule(range(50), 5, 0.0, 10.0, seed=11)
        assert a.failures == b.failures


class TestPoissonLifetimeSchedule:
    def test_only_hosts_with_short_lifetimes_fail(self):
        schedule = poisson_lifetime_schedule(range(200), mean_lifetime=5.0,
                                             horizon=10.0, seed=2)
        assert 0 < schedule.num_failures < 200
        assert all(t <= 10.0 for t, _ in schedule.failures)

    def test_protect_excludes_hosts(self):
        schedule = poisson_lifetime_schedule(range(50), mean_lifetime=0.1,
                                             horizon=100.0, seed=2, protect=[3])
        assert 3 not in schedule.failed_hosts

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson_lifetime_schedule(range(5), mean_lifetime=0.0, horizon=1.0)
