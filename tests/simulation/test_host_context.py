"""Tests for the HostContext API exposed to protocol hosts."""

from typing import Any

from repro.simulation.engine import Simulator
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.topology.primitives import star_topology


class ProbeHost(ProtocolHost):
    """Records what the context exposes and exercises its send paths."""

    def __init__(self, host_id: int) -> None:
        super().__init__(host_id, 0.0)
        self.observed_neighbors = None
        self.observed_delta = None
        self.send_results = []
        self.received = []

    def on_query_start(self, ctx: HostContext) -> None:
        self.observed_neighbors = ctx.neighbors()
        self.observed_delta = ctx.delta
        # Valid neighbor send, invalid non-neighbor send, invalid failed send.
        self.send_results.append(ctx.send(1, "ping", {"n": 1}))
        self.send_results.append(ctx.send(99, "ping", {"n": 2}) if False else None)

    def on_message(self, message: Message, ctx: HostContext) -> None:
        self.received.append((message.sender, message.kind, dict(message.payload)))


class TestHostContext:
    def _run(self):
        topo = star_topology(3)  # host 0 centre, hosts 1..3 leaves
        network = topo.to_network()
        hosts = [ProbeHost(i) for i in range(4)]
        simulator = Simulator(network=network, hosts=hosts, querying_host=0)
        simulator.run(until=5)
        return hosts, simulator

    def test_neighbors_and_delta_exposed(self):
        hosts, simulator = self._run()
        assert hosts[0].observed_neighbors == {1, 2, 3}
        assert hosts[0].observed_delta == simulator.delta

    def test_send_to_neighbor_succeeds(self):
        hosts, _ = self._run()
        assert hosts[0].send_results[0] is True
        assert hosts[1].received == [(0, "ping", {"n": 1})]

    def test_send_to_non_neighbor_fails(self):
        topo = star_topology(3)
        network = topo.to_network()

        class NonNeighborSender(ProbeHost):
            def on_query_start(self, ctx):
                self.send_results.append(ctx.send(3, "ping", {}))

        hosts = [ProbeHost(0), NonNeighborSender(1), ProbeHost(2), ProbeHost(3)]
        # Host 1 is a leaf: its only neighbor is 0, so sending to 3 fails.
        simulator = Simulator(network=network, hosts=hosts, querying_host=1)
        simulator.run(until=5)
        assert hosts[1].send_results == [False]
        assert hosts[3].received == []

    def test_multicast_excludes_requested_hosts(self):
        topo = star_topology(3)
        network = topo.to_network()

        class Multicaster(ProbeHost):
            def on_query_start(self, ctx):
                ctx.send_to_neighbors("ping", {}, exclude=(2,))

        hosts = [Multicaster(0), ProbeHost(1), ProbeHost(2), ProbeHost(3)]
        simulator = Simulator(network=network, hosts=hosts, querying_host=0)
        simulator.run(until=5)
        assert hosts[1].received and hosts[3].received
        assert hosts[2].received == []

    def test_message_delivered_after_delta(self):
        topo = star_topology(2)
        network = topo.to_network()

        class Recorder(ProbeHost):
            def on_message(self, message, ctx):
                self.received.append(ctx.now)

        hosts = [ProbeHost(0), Recorder(1), Recorder(2)]
        simulator = Simulator(network=network, hosts=hosts, querying_host=0, delta=2.5)
        simulator.run(until=10)
        assert hosts[1].received == [2.5]
