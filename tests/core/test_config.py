"""Tests for the configuration objects."""

import pytest

from repro.core.config import ProtocolConfig, SimulationConfig


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.delta == 1.0
        assert not config.wireless
        assert config.seed == 0
        assert config.delay == "fixed"
        assert config.stats == "full"

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(delta=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(max_time=-1.0)

    def test_delay_and_stats_specs_validated_eagerly(self):
        assert SimulationConfig(delay="uniform:0.5,1.0").delay == "uniform:0.5,1.0"
        assert SimulationConfig(stats="streaming").stats == "streaming"
        with pytest.raises(ValueError):
            SimulationConfig(delay="warp")
        with pytest.raises(ValueError):
            SimulationConfig(delay="uniform:0.9,0.1")
        with pytest.raises(ValueError):
            SimulationConfig(stats="verbose")

    def test_frozen(self):
        config = SimulationConfig()
        with pytest.raises(Exception):
            config.delta = 2.0


class TestProtocolConfig:
    def test_defaults(self):
        config = ProtocolConfig()
        assert config.d_hat is None
        assert config.fm_repetitions == 8
        assert config.early_termination
        assert config.dag_parents == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ProtocolConfig(d_hat=0)
        with pytest.raises(ValueError):
            ProtocolConfig(fm_repetitions=0)
        with pytest.raises(ValueError):
            ProtocolConfig(dag_parents=0)
        with pytest.raises(ValueError):
            ProtocolConfig(gossip_rounds=0)
        with pytest.raises(ValueError):
            ProtocolConfig(epsilon=1.0)
        with pytest.raises(ValueError):
            ProtocolConfig(zeta=0.0)

    def test_custom_values_accepted(self):
        config = ProtocolConfig(d_hat=20, fm_repetitions=32, dag_parents=4,
                                gossip_rounds=10, epsilon=0.2, zeta=0.01)
        assert config.d_hat == 20
        assert config.fm_repetitions == 32
