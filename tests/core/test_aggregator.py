"""Tests for the ValidAggregator facade."""

import pytest

from repro.core.aggregator import ValidAggregator
from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.results import QueryResult
from repro.queries.query import AggregateQuery, QueryKind
from repro.simulation.churn import uniform_failure_schedule
from repro.topology.random_graph import random_topology
from repro.workloads.values import constant_values, zipf_values


@pytest.fixture
def aggregator():
    topo = random_topology(80, avg_degree=5, seed=13)
    values = zipf_values(80, seed=13)
    return ValidAggregator(topo, values, seed=13), topo, values


class TestConstruction:
    def test_validates_inputs(self):
        topo = random_topology(10, seed=1)
        with pytest.raises(ValueError):
            ValidAggregator(topo, [1, 2, 3])
        with pytest.raises(ValueError):
            ValidAggregator(topo, [1] * 10, querying_host=50)

    def test_available_protocols_listed(self, aggregator):
        agg, _, _ = aggregator
        protocols = agg.available_protocols()
        assert "wildfire" in protocols
        assert "spanning-tree" in protocols
        assert "allreport" in protocols


class TestQueries:
    def test_max_and_min_exact(self, aggregator):
        agg, _, values = aggregator
        assert agg.maximum().value == max(values)
        assert agg.minimum().value == min(values)

    def test_query_accepts_kind_objects(self, aggregator):
        agg, _, values = aggregator
        by_enum = agg.query(QueryKind.MAX)
        by_query = agg.query(AggregateQuery.of("max"))
        assert by_enum.value == by_query.value == max(values)

    def test_count_estimate_with_wildfire(self, aggregator):
        agg, topo, _ = aggregator
        result = agg.count()
        assert topo.num_hosts / 2.5 <= result.value <= topo.num_hosts * 2.5

    def test_spanning_tree_count_exact_without_churn(self, aggregator):
        agg, topo, _ = aggregator
        result = agg.count(protocol="spanning-tree")
        assert result.value == topo.num_hosts

    def test_unknown_protocol_rejected(self, aggregator):
        agg, _, _ = aggregator
        with pytest.raises(ValueError):
            agg.query("max", protocol="teleportation")

    def test_true_value_helper(self, aggregator):
        agg, topo, values = aggregator
        assert agg.true_value("sum") == sum(values)
        assert agg.true_value(QueryKind.COUNT) == topo.num_hosts

    def test_summary_dictionary(self, aggregator):
        agg, _, _ = aggregator
        summary = agg.maximum().summary()
        assert summary["protocol"] == "wildfire"
        assert summary["kind"] == "max"
        assert summary["communication_cost"] > 0


class TestCertificates:
    def test_no_certificate_without_churn(self, aggregator):
        agg, _, _ = aggregator
        result = agg.maximum()
        assert result.certificate is None
        assert result.is_valid is None

    def test_certificate_issued_with_churn(self, aggregator):
        agg, topo, _ = aggregator
        churn = uniform_failure_schedule(range(topo.num_hosts), 8, 0.5, 10.0,
                                         seed=3, protect=[0])
        result = agg.maximum(churn=churn)
        assert result.certificate is not None
        assert result.is_valid is True
        assert result.certificate.lower_bound <= result.certificate.upper_bound

    def test_sketch_queries_get_approximate_certificates(self, aggregator):
        agg, topo, _ = aggregator
        churn = uniform_failure_schedule(range(topo.num_hosts), 8, 0.5, 10.0,
                                         seed=4, protect=[0])
        result = agg.count(churn=churn)
        assert result.certificate is not None
        assert result.certificate.epsilon > 0.0

    def test_epsilon_override(self, aggregator):
        agg, topo, _ = aggregator
        churn = uniform_failure_schedule(range(topo.num_hosts), 4, 0.5, 10.0,
                                         seed=5, protect=[0])
        result = agg.count(churn=churn, epsilon_for_certificate=0.9)
        assert result.certificate.epsilon == 0.9


class TestBestEffortComparison:
    def test_spanning_tree_can_go_invalid_under_heavy_churn(self):
        topo = random_topology(150, avg_degree=4, seed=21)
        values = constant_values(150, 1)
        agg = ValidAggregator(topo, values, seed=21)
        invalid_seen = False
        for seed in range(6):
            churn = uniform_failure_schedule(range(150), 30, 0.5, 12.0,
                                             seed=seed, protect=[0])
            result = agg.count(protocol="spanning-tree", churn=churn,
                               epsilon_for_certificate=0.0)
            if result.is_valid is False:
                invalid_seen = True
                break
        assert invalid_seen

    def test_wildfire_min_max_always_valid_under_churn(self):
        topo = random_topology(120, avg_degree=5, seed=22)
        values = zipf_values(120, seed=22)
        agg = ValidAggregator(topo, values, seed=22)
        for seed in range(4):
            churn = uniform_failure_schedule(range(120), 20, 0.5, 12.0,
                                             seed=seed, protect=[0])
            assert agg.maximum(churn=churn).is_valid
            assert agg.minimum(churn=churn).is_valid


class TestConfiguration:
    def test_dag_parent_config_used(self):
        topo = random_topology(60, avg_degree=5, seed=30)
        values = constant_values(60, 1)
        agg = ValidAggregator(topo, values, seed=30,
                              protocol_config=ProtocolConfig(dag_parents=3))
        result = agg.count(protocol="dag")
        assert result.protocol == "dag-k3"

    def test_wireless_config_reduces_costs_on_grid(self):
        from repro.topology.grid import grid_topology

        topo = grid_topology(7)
        values = constant_values(topo.num_hosts, 1)
        wired = ValidAggregator(topo, values, seed=31)
        wireless = ValidAggregator(topo, values, seed=31,
                                   simulation=SimulationConfig(wireless=True))
        assert (wireless.maximum().communication_cost
                < wired.maximum().communication_cost)

    def test_gossip_protocol_reachable_from_facade(self):
        topo = random_topology(50, avg_degree=6, seed=32)
        values = constant_values(50, 1)
        agg = ValidAggregator(topo, values, seed=32,
                              protocol_config=ProtocolConfig(gossip_rounds=60))
        result = agg.count(protocol="gossip")
        assert result.value == pytest.approx(50, rel=0.3)

    def test_delay_config_threads_through_and_keeps_min_exact(self):
        topo = random_topology(50, avg_degree=6, seed=33)
        values = constant_values(50, 1)
        agg = ValidAggregator(
            topo, values, seed=33,
            simulation=SimulationConfig(delay="uniform:0.25,1.0"))
        result = agg.minimum()
        assert result.value == 1.0
        # Variable delays can only arrive earlier than the fixed worst
        # case, so the run finishes no later.
        fixed = ValidAggregator(topo, values, seed=33).minimum()
        assert result.run.finished_at <= fixed.run.finished_at + 1e-9

    def test_streaming_stats_config_keeps_measures(self):
        topo = random_topology(50, avg_degree=6, seed=34)
        values = constant_values(50, 1)
        full = ValidAggregator(topo, values, seed=34).count(
            protocol="spanning-tree")
        streaming = ValidAggregator(
            topo, values, seed=34,
            simulation=SimulationConfig(stats="streaming")).count(
            protocol="spanning-tree")
        assert streaming.value == full.value
        assert streaming.run.costs.summary() == full.run.costs.summary()
