"""Golden seeded-equivalence tests for the simulation kernel.

These tests replay every figure experiment and a protocol x topology x
query x churn matrix at fixed seeds and require the results to be
*bit-identical* to committed snapshots -- declared values, ``extra``
payloads, and the full :class:`CostAccounting` (per-host processed
counters, per-instant message counters, chain depths), not just summaries.

Two snapshot families pin two things:

* ``*.legacy.json`` was captured with the ORIGINAL pre-rewrite kernel
  (heap event queue, per-coin-toss FM sampling).  Replaying it with the
  FM sampler in ``legacy`` mode proves the batched-ring kernel preserves
  the pre-rewrite event ordering, RNG consumption, and cost accounting
  exactly.  Never regenerate these files.
* ``*.fast.json`` pins the current default kernel (``getrandbits``
  sampling) so future refactors are held to the same standard.
  Regenerate only for deliberate, documented behaviour changes::

      PYTHONPATH=src python tests/golden/regen_snapshots.py --mode fast
"""

import json
import os

import pytest

from repro.sketches.fm import sampling_mode

from tests.golden import regen_snapshots as regen

MODES = ("legacy", "fast")


def load_snapshot(name: str, mode: str):
    path = os.path.join(regen.SNAPSHOT_DIR, f"{name}.{mode}.json")
    assert os.path.exists(path), (
        f"missing golden snapshot {path}; regenerate with "
        f"PYTHONPATH=src python tests/golden/regen_snapshots.py --mode {mode}"
    )
    with open(path) as handle:
        return json.load(handle)


def assert_bit_identical(stored, live, context: str) -> None:
    stored_json = json.dumps(stored, sort_keys=True)
    live_json = json.dumps(live, sort_keys=True)
    if stored_json == live_json:
        return
    raise AssertionError(
        f"{context}: kernel output diverged from the golden snapshot.\n"
        f"stored: {stored_json[:400]}...\n"
        f"live:   {live_json[:400]}..."
    )


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("figure_id", regen.GOLDEN_FIGURES)
def test_figure_rows_bit_identical(mode, figure_id):
    from repro.experiments.figures import run_figure

    stored = load_snapshot("figures", mode)
    with sampling_mode(mode):
        live = regen.canonical(
            run_figure(figure_id, scale=regen.GOLDEN_SCALE,
                       seed=regen.GOLDEN_SEED))
    assert_bit_identical(stored[figure_id], live,
                         f"figure {figure_id} [{mode} sampling]")


@pytest.mark.parametrize("mode", MODES)
def test_protocol_matrix_bit_identical(mode):
    stored = load_snapshot("protocol_matrix", mode)
    with sampling_mode(mode):
        live = [regen.canonical(regen.run_matrix_case(case))
                for case in regen.matrix_cases()]
    assert len(stored) == len(live)
    for stored_case, live_case in zip(stored, live):
        assert_bit_identical(
            stored_case, live_case,
            f"protocol matrix cell {live_case['params']} [{mode} sampling]")


def test_matrix_snapshots_cover_full_cost_accounting():
    """Guard against snapshots silently degrading to summaries."""
    stored = load_snapshot("protocol_matrix", "fast")
    for case in stored:
        costs = case["costs"]
        for key in ("messages_sent", "wireless_transmissions",
                    "dropped_messages", "max_chain_depth",
                    "messages_processed", "messages_by_time",
                    "messages_by_kind"):
            assert key in costs, f"snapshot missing cost field {key}"
        # Per-host and per-instant counters must be present as pair lists.
        assert isinstance(costs["messages_processed"], list)
        assert isinstance(costs["messages_by_time"], list)


def test_legacy_and_fast_modes_agree_on_deterministic_cells():
    """min-aggregate cells consume no sketch randomness, so the two
    snapshot families must agree on them exactly -- a cross-check that the
    families differ only where FM sampling is involved."""
    legacy = load_snapshot("protocol_matrix", "legacy")
    fast = load_snapshot("protocol_matrix", "fast")
    compared = 0
    for legacy_case, fast_case in zip(legacy, fast):
        if legacy_case["params"]["query"] != "min":
            continue
        # Tree protocols draw no randomness for min either; WILDFIRE uses
        # the plain MinCombiner.  Everything must match.
        assert_bit_identical(legacy_case, fast_case,
                             f"min cell {legacy_case['params']}")
        compared += 1
    assert compared > 0
