"""Regenerate the golden seeded-equivalence snapshots.

The golden harness pins the simulation kernel's observable behaviour at
fixed seeds: the declared values, the full :class:`CostAccounting` (every
counter, not just the summary), and the per-figure experiment rows.  Any
kernel refactor must reproduce these snapshots bit-identically.

Two snapshot families exist, one per FM sampling mode:

* ``*.legacy.json`` -- captured with the coin-toss geometric sampler that
  shipped in the seed implementation.  These files were generated *before*
  the batched-ring kernel rewrite and must never be regenerated: they prove
  the rewritten engine/network/protocol stack replays the pre-rewrite
  event order and RNG stream exactly.
* ``*.fast.json`` -- captured with the default ``getrandbits`` sampler.
  These pin the current kernel for future refactors; regenerate them only
  when a deliberate, documented behaviour change is made.

Usage (from the repository root)::

    PYTHONPATH=src python tests/golden/regen_snapshots.py --mode fast
    PYTHONPATH=src python tests/golden/regen_snapshots.py --mode legacy  # pre-rewrite capture only

See README.md ("Golden snapshots") for when regeneration is legitimate.
"""

from __future__ import annotations

import argparse
import json
import os
from contextlib import contextmanager
from typing import Any, Dict, List

#: Scale factor / seed used by every figure snapshot.  Small enough that the
#: whole golden suite replays in seconds, large enough that every protocol
#: code path (flood, convergecast, churn recovery) is exercised.
GOLDEN_SCALE = 0.1
GOLDEN_SEED = 3

#: Seed for the protocol-matrix snapshots.
MATRIX_SEED = 11

SNAPSHOT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "snapshots")

#: Figures pinned by the golden harness (all registered figure experiments).
GOLDEN_FIGURES = [
    "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13a", "fig13b", "thm4.4", "sec5.4",
]


@contextmanager
def sampling_mode(mode: str):
    """Run with the given FM sampling mode; no-op on pre-rewrite trees."""
    try:
        from repro.sketches.fm import sampling_mode as fm_sampling_mode
    except ImportError:  # pre-rewrite fm.py: only the legacy sampler exists
        yield
        return
    with fm_sampling_mode(mode):
        yield


def canonical(obj: Any) -> Any:
    """Round-trip through JSON so snapshots and live results compare equal."""
    return json.loads(json.dumps(obj))


def counter_pairs(counter) -> List[List[Any]]:
    """A Counter as a sorted [key, value] list (JSON keys must be strings)."""
    return [[key, counter[key]] for key in sorted(counter)]


def costs_as_dict(costs) -> Dict[str, Any]:
    """Serialise every field of a CostAccounting, not just the summary."""
    return {
        "messages_sent": costs.messages_sent,
        "wireless_transmissions": costs.wireless_transmissions,
        "dropped_messages": costs.dropped_messages,
        "max_chain_depth": costs.max_chain_depth,
        "messages_processed": counter_pairs(costs.messages_processed),
        "messages_by_time": counter_pairs(costs.messages_by_time),
        "messages_by_kind": counter_pairs(costs.messages_by_kind),
    }


def matrix_cases() -> List[Dict[str, Any]]:
    """The protocol x topology x query x churn grid pinned by the harness."""
    cases = []
    for protocol in ("wildfire", "spanning-tree", "dag2"):
        for topology in ("random-48", "grid-7", "power-law-48"):
            for query in ("count", "sum", "min"):
                for churned in (False, True):
                    cases.append({
                        "protocol": protocol,
                        "topology": topology,
                        "query": query,
                        "churn": churned,
                    })
    return cases


def _build_topology(name: str):
    from repro.topology.grid import grid_topology
    from repro.topology.power_law import power_law_topology
    from repro.topology.random_graph import random_topology

    if name == "random-48":
        return random_topology(48, seed=MATRIX_SEED)
    if name == "grid-7":
        return grid_topology(7)
    if name == "power-law-48":
        return power_law_topology(48, seed=MATRIX_SEED)
    raise KeyError(name)


def _build_protocol(name: str):
    from repro.protocols.dag import DirectedAcyclicGraph
    from repro.protocols.spanning_tree import SpanningTree
    from repro.protocols.wildfire import Wildfire

    if name == "wildfire":
        return Wildfire()
    if name == "spanning-tree":
        return SpanningTree()
    if name == "dag2":
        return DirectedAcyclicGraph(num_parents=2)
    raise KeyError(name)


def run_matrix_case(case: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one matrix cell and serialise its full run result."""
    from repro.protocols.base import run_protocol
    from repro.simulation.churn import uniform_failure_schedule
    from repro.workloads.values import uniform_values

    topology = _build_topology(case["topology"])
    values = uniform_values(topology.num_hosts, low=1, high=9,
                            seed=MATRIX_SEED)
    churn = None
    if case["churn"]:
        churn = uniform_failure_schedule(
            candidates=list(range(topology.num_hosts)),
            num_failures=5,
            start=0.5,
            end=6.0,
            seed=MATRIX_SEED,
            protect=[0],
        )
    result = run_protocol(
        _build_protocol(case["protocol"]),
        topology,
        values,
        case["query"],
        querying_host=0,
        churn=churn,
        seed=MATRIX_SEED,
    )
    return {
        "params": dict(case),
        "value": result.value,
        "finished_at": result.finished_at,
        "querying_host": result.querying_host,
        "d_hat": result.d_hat,
        "termination_time": result.termination_time,
        "extra": canonical(result.extra),
        "costs": costs_as_dict(result.costs),
    }


def capture_figures() -> Dict[str, Any]:
    from repro.experiments.figures import run_figure

    return {
        figure_id: canonical(
            run_figure(figure_id, scale=GOLDEN_SCALE, seed=GOLDEN_SEED))
        for figure_id in GOLDEN_FIGURES
    }


def capture_matrix() -> List[Dict[str, Any]]:
    return [canonical(run_matrix_case(case)) for case in matrix_cases()]


def write_snapshot(name: str, mode: str, payload: Any) -> str:
    os.makedirs(SNAPSHOT_DIR, exist_ok=True)
    path = os.path.join(SNAPSHOT_DIR, f"{name}.{mode}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("legacy", "fast"), required=True,
                        help="FM sampling mode to capture snapshots under")
    args = parser.parse_args()

    with sampling_mode(args.mode):
        figures = capture_figures()
        matrix = capture_matrix()
    print(write_snapshot("figures", args.mode, figures))
    print(write_snapshot("protocol_matrix", args.mode, matrix))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
