"""Integration test reproducing the paper's worked Example 5.1.

A four-host P2P network (Fig. 5): w -- x, w -- y, x -- z, y -- z with values
w=5, x=15, y=1, z=25.  Host w initiates a maximum query with D_hat = 3; the
protocol terminates at time 2 * D_hat = 6 and w declares 25.  The example
also notes that the result survives the failure of either x or y, and that
if both fail the answer 5 is still Single-Site Valid because H_C = {w}.
"""

import pytest

from repro.protocols.base import run_protocol
from repro.protocols.wildfire import Wildfire
from repro.semantics.oracle import Oracle
from repro.simulation.churn import ChurnSchedule
from repro.topology.base import Topology

W, X, Y, Z = 0, 1, 2, 3
VALUES = [5, 15, 1, 25]


@pytest.fixture
def example_topology():
    return Topology.from_edges(4, [(W, X), (W, Y), (X, Z), (Y, Z)], name="fig5")


class TestExample51:
    def test_failure_free_maximum(self, example_topology):
        result = run_protocol(Wildfire(), example_topology, VALUES, "max",
                              querying_host=W, d_hat=3, seed=1)
        assert result.value == 25.0
        assert result.termination_time == 6.0

    def test_result_survives_failure_of_x(self, example_topology):
        churn = ChurnSchedule(failures=[(1.5, X)])
        result = run_protocol(Wildfire(), example_topology, VALUES, "max",
                              querying_host=W, d_hat=3, churn=churn, seed=1)
        assert result.value == 25.0

    def test_result_survives_failure_of_y(self, example_topology):
        churn = ChurnSchedule(failures=[(1.5, Y)])
        result = run_protocol(Wildfire(), example_topology, VALUES, "max",
                              querying_host=W, d_hat=3, churn=churn, seed=1)
        assert result.value == 25.0

    def test_both_relays_failing_still_yields_valid_answer(self, example_topology):
        churn = ChurnSchedule(failures=[(0.5, X), (0.5, Y)])
        result = run_protocol(Wildfire(), example_topology, VALUES, "max",
                              querying_host=W, d_hat=3, churn=churn, seed=1)
        # w is cut off from z, so it can only declare its own value...
        assert result.value == 5.0
        # ...which is exactly what Single-Site Validity allows: H_C = {w}.
        oracle = Oracle(example_topology, VALUES, W)
        assert oracle.is_valid(result.value, "max", churn,
                               horizon=result.termination_time)
        bounds = oracle.bounds("max", churn, horizon=result.termination_time)
        assert set(bounds.stable_core) == {W}

    def test_first_example_counting_scenario(self):
        """Example 1.1's moral: tree aggregation loses whole subtrees.

        We build a 16-host tree-like sensor network, fail one interior host
        after Broadcast, and check that SPANNINGTREE undercounts while
        WILDFIRE's duplicate-insensitive count stays within the oracle
        bounds (the grid-like network is 2-connected, so every surviving
        host keeps a stable path)."""
        from repro.protocols.spanning_tree import SpanningTree
        from repro.sketches.combiners import FMCountCombiner
        from repro.topology.grid import grid_topology
        from repro.workloads.values import constant_values

        topo = grid_topology(4)  # 16 sensors
        values = constant_values(16, 1)
        churn = ChurnSchedule(failures=[(2.5, 5)])
        oracle = Oracle(topo, values, 0)

        tree = run_protocol(SpanningTree(), topo, values, "count", d_hat=6,
                            churn=churn, seed=3)
        wildfire = run_protocol(Wildfire(), topo, values, "count",
                                combiner=FMCountCombiner(repetitions=32),
                                d_hat=6, churn=churn, seed=3)
        bounds = oracle.bounds("count", churn, horizon=12.0)
        assert bounds.core_size == 15
        assert tree.value <= 15.0
        assert oracle.is_valid(wildfire.value, "count", churn, horizon=12.0,
                               epsilon=0.6)
