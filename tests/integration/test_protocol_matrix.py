"""Parametrized protocol x topology x churn invariant matrix.

Every registered aggregation protocol must, on every paper topology
family, with and without churn:

* terminate before the simulator's ``max_time`` backstop (the run loop
  stops at the protocol's nominal horizon, never at the runaway guard),
* declare a value at the querying host, and
* respect its validity semantics from :mod:`repro.semantics.validity`:
  WILDFIRE's exact duplicate-insensitive aggregates (min/max) are
  Single-Site Valid on any failure pattern sparing the querying host,
  and every best-effort protocol's exact count/sum answer is ``q(S)``
  for some host set ``S`` between {querying host} and the union bound
  ``H_U``.

This is the semantics lock on the batched kernel: any future fast path
that breaks delivery ordering, deadline handling, or churn processing
fails this matrix before it can corrupt an experiment.
"""

import pytest

from repro.protocols.allreport import AllReport
from repro.protocols.base import prepare_protocol_run, run_protocol
from repro.protocols.dag import DirectedAcyclicGraph
from repro.protocols.gossip import PushSumGossip
from repro.protocols.randomized_report import RandomizedReport
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.semantics.oracle import Oracle
from repro.semantics.validity import aggregate_over, union_set
from repro.simulation.churn import (
    ChurnSchedule,
    JoinSpec,
    uniform_failure_schedule,
)
from repro.simulation.engine import Simulator
from repro.simulation.network import NetworkEventKind
from repro.topology.grid import grid_topology
from repro.topology.power_law import power_law_topology
from repro.topology.random_graph import random_topology
from repro.topology.primitives import ring_topology
from repro.workloads.values import uniform_values

SEED = 23

TOPOLOGIES = {
    "random": lambda: random_topology(36, avg_degree=3.0, seed=SEED),
    "grid": lambda: grid_topology(6),
    "power-law": lambda: power_law_topology(36, seed=SEED),
    "ring": lambda: ring_topology(20),
}

PROTOCOLS = {
    "wildfire": lambda: Wildfire(),
    "spanning-tree": lambda: SpanningTree(),
    "dag2": lambda: DirectedAcyclicGraph(num_parents=2),
    "allreport": lambda: AllReport(),
    "randomized-report": lambda: RandomizedReport(),
    "push-sum-gossip": lambda: PushSumGossip(),
}

#: Protocols whose count/sum answers are exact sub-aggregates (single-path
#: trees and report-style protocols).  WILDFIRE's count/sum use FM
#: estimates, push-sum converges to an approximation, and the DAG protocol
#: splits partial aggregates fractionally across parents (so its count is
#: approximate even on static networks) -- those are checked for sanity,
#: not exactness.
EXACT_SUBSET_PROTOCOLS = {"spanning-tree", "allreport"}


def _make_churn(topology, churned: bool):
    if not churned:
        return None
    return uniform_failure_schedule(
        candidates=list(range(topology.num_hosts)),
        num_failures=max(2, topology.num_hosts // 8),
        start=0.5,
        end=5.0,
        seed=SEED,
        protect=[0],
    )


@pytest.mark.parametrize("churned", [False, True], ids=["static", "churn"])
@pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_protocol_terminates_declares_and_respects_validity(
        protocol_name, topology_name, churned):
    topology = TOPOLOGIES[topology_name]()
    values = uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)
    churn = _make_churn(topology, churned)
    protocol = PROTOCOLS[protocol_name]()
    query = "min" if protocol_name == "wildfire" else "count"

    result = run_protocol(protocol, topology, values, query,
                          querying_host=0, churn=churn, seed=SEED)

    # Termination: the run stopped at (or before) the protocol's nominal
    # horizon, far below the simulator's runaway backstop.
    backstop = result.termination_time * 4 + 16
    assert result.finished_at <= result.termination_time + 1e-9
    assert result.finished_at < backstop

    # Declaration: the querying host produced an answer.
    assert result.value is not None

    # Validity semantics.
    if protocol_name == "wildfire":
        oracle = Oracle(topology, values, 0)
        assert oracle.is_valid(
            result.value, query, churn or ChurnSchedule.empty(),
            horizon=result.termination_time,
        )
    elif protocol_name in EXACT_SUBSET_PROTOCOLS:
        # Best-effort exact count: q(S) for some S with
        # {querying host} <= S <= H_U, i.e. an integer in [1, |H_U|].
        union = union_set(topology, churn or ChurnSchedule.empty(),
                          horizon=result.termination_time)
        upper = aggregate_over("count", union, values)
        assert 1.0 <= result.value <= upper + 1e-9
        assert float(result.value).is_integer()


@pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("protocol_name",
                         sorted(EXACT_SUBSET_PROTOCOLS | {"wildfire"}))
def test_static_runs_answer_exactly(protocol_name, topology_name):
    """Without churn, exact protocols count every host; WILDFIRE's min
    equals the true minimum."""
    topology = TOPOLOGIES[topology_name]()
    values = uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)
    protocol = PROTOCOLS[protocol_name]()
    if protocol_name == "wildfire":
        result = run_protocol(protocol, topology, values, "min",
                              querying_host=0, seed=SEED)
        assert result.value == float(min(values))
    else:
        result = run_protocol(protocol, topology, values, "count",
                              querying_host=0, seed=SEED)
        assert result.value == float(topology.num_hosts)


#: Variable-delay axis: realised per-hop delays in (0, delta] drawn from
#: each family the delay layer implements.  Protocol deadlines are
#: computed from the bound, so everything proven for the fixed worst case
#: must keep holding here.
DELAY_MODELS = ("uniform:0.25,1.0", "heavy_tail:1.2", "per_edge")


@pytest.mark.parametrize("delay", DELAY_MODELS)
@pytest.mark.parametrize("topology_name", ["grid", "random"])
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_protocols_terminate_and_declare_under_variable_delay(
        protocol_name, topology_name, delay):
    """All protocols still terminate before their nominal horizon and
    declare a value when message delays vary under the bound."""
    topology = TOPOLOGIES[topology_name]()
    values = uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)
    protocol = PROTOCOLS[protocol_name]()
    query = "min" if protocol_name == "wildfire" else "count"

    result = run_protocol(protocol, topology, values, query,
                          querying_host=0, seed=SEED, delay=delay)

    assert result.finished_at <= result.termination_time + 1e-9
    assert result.value is not None
    if protocol_name == "wildfire":
        # Single-Site Validity on a static network: the exact minimum.
        assert result.value == float(min(values))
    elif protocol_name in EXACT_SUBSET_PROTOCOLS:
        # On a static network every host has a stable path, so the
        # best-effort exact protocols must still count everyone.
        assert result.value == float(topology.num_hosts)


@pytest.mark.parametrize("delay", DELAY_MODELS)
@pytest.mark.parametrize("protocol_name", ["spanning-tree", "dag2"])
def test_tree_and_dag_preserve_validity_under_variable_delay(
        protocol_name, delay):
    """Tree and DAG deadlines are computed from the delay *bound*, so on
    static networks their duplicate-insensitive min answer keeps
    Single-Site Validity under every realised delay model: each child's
    report still arrives by its parent's deadline."""
    for topology_name in ("random", "power-law"):
        topology = TOPOLOGIES[topology_name]()
        values = uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)
        result = run_protocol(PROTOCOLS[protocol_name](), topology, values,
                              "min", querying_host=0, seed=SEED, delay=delay)
        assert result.value == float(min(values)), (
            f"{protocol_name} lost Single-Site Validity on "
            f"{topology_name} under {delay} delay"
        )


#: Join axis: ``ChurnSchedule.joins`` routed through the calendar queue,
#: with and without variable realised delays.  ``None`` is the fixed-delay
#: fast path (joins must interleave correctly with batched ring slots);
#: the model specs exercise joins landing between arbitrary float-time
#: deliveries.  Long-lived service runs make joins first-class: a tenant
#: can submit a query at any time, including after the network grew.
_JOIN_DELAYS = [None, "uniform:0.25,1.0", "heavy_tail:1.2", "per_edge"]


def _run_with_joins(delay, join_factory):
    """One WILDFIRE min run over a schedule mixing failures and joins."""
    from repro.protocols.wildfire import WildfireHost

    topology = TOPOLOGIES["random"]()
    values = uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)
    prepared = prepare_protocol_run(
        Wildfire(), topology, values, "min", querying_host=0, seed=SEED,
        delay=delay)
    churn = ChurnSchedule(
        failures=[(2.5, 7), (4.0, 19)],
        joins=[JoinSpec(time=1.0, neighbors=(0, 3)),
               JoinSpec(time=2.0, neighbors=(5, 11, 20))],
    )
    network = topology.to_network()
    simulator = Simulator(
        network=network, hosts=prepared.hosts, querying_host=0,
        churn=churn, delay_model=prepared.delay_model,
        max_time=prepared.termination * 4 + 16,
    )
    if join_factory:
        simulator.join_host_factory = lambda host_id: WildfireHost(
            host_id=host_id, value=0.5, querying_host=0,
            combiner=prepared.combiner, d_hat=prepared.d_hat, delta=1.0,
            rng=prepared.rng)
    result = simulator.run(until=prepared.termination)
    return network, simulator, result, values


@pytest.mark.parametrize("delay", _JOIN_DELAYS,
                         ids=["fixed" if d is None else d.split(":")[0]
                              for d in _JOIN_DELAYS])
class TestJoinsThroughCalendarQueue:
    def test_joins_are_applied_and_logged(self, delay):
        network, simulator, result, values = _run_with_joins(
            delay, join_factory=False)
        # Both joins landed: the network grew by two host slots and the
        # event log records them at their scheduled instants.
        assert network.num_hosts == len(values) + 2
        join_events = [e for e in network.events
                       if e.kind is NetworkEventKind.JOIN]
        assert [e.time for e in join_events] == [1.0, 2.0]
        assert join_events[0].neighbors == (0, 3)
        # Joined hosts are wired symmetrically and alive.
        for event in join_events:
            assert network.is_alive(event.host)
            for neighbor in event.neighbors:
                if network.is_alive(neighbor):
                    assert network.has_edge(event.host, neighbor)
        # Without a factory the joined hosts are inert placeholders; the
        # protocol still terminates and declares the stable-core minimum.
        assert result.value == float(min(values))
        assert len(simulator.hosts) == network.num_hosts

    def test_joined_hosts_participate_when_a_factory_is_attached(
            self, delay):
        network, simulator, result, values = _run_with_joins(
            delay, join_factory=True)
        # The factory-built joined hosts carry value 0.5, below every
        # initial value; WILDFIRE's flooding must fold them in (they are
        # alive members of the network for almost the whole interval),
        # so the declared minimum is the joined hosts' value.
        assert result.value == 0.5
        joined = simulator.hosts[len(values):]
        assert len(joined) == 2
        assert all(host.active for host in joined)


#: Packed-vs-reference axis: the CSR network core against the retained
#: set-based reference implementation, one seeded run per protocol x
#: topology x churn x delay cell.  Event-for-event equality is asserted
#: through the declared value, the full cost-accounting fingerprint
#: (per-kind sends, per-instant histogram, computation histogram -- any
#: reordered or extra event changes it), and the declaration time.
_PACKED_AXIS_DELAYS = [None, "uniform:0.25,1.0"]


def _run_cell(protocol_name, topology_name, churned, delay, monkeypatch,
              reference: bool):
    from repro.simulation.network_reference import ReferenceNetwork

    topology = TOPOLOGIES[topology_name]()
    values = uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)
    churn = _make_churn(topology, churned)
    protocol = PROTOCOLS[protocol_name]()
    query = "min" if protocol_name == "wildfire" else "count"
    if reference:
        # ``Topology.to_network`` resolves the class through its module
        # global, so this swaps the substrate under the whole run without
        # touching any other seam.
        monkeypatch.setattr("repro.topology.base.DynamicNetwork",
                            ReferenceNetwork)
    result = run_protocol(protocol, topology, values, query,
                          querying_host=0, churn=churn, seed=SEED,
                          delay=delay)
    return {
        "value": result.value,
        "cost_fingerprint": result.costs.fingerprint(),
        "declared_at": result.finished_at,
        "d_hat": result.d_hat,
        "termination": result.termination_time,
    }


@pytest.mark.parametrize("delay", _PACKED_AXIS_DELAYS,
                         ids=["fixed", "uniform"])
@pytest.mark.parametrize("churned", [False, True], ids=["static", "churn"])
@pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_packed_core_is_event_identical_to_reference_network(
        protocol_name, topology_name, churned, delay, monkeypatch):
    packed = _run_cell(protocol_name, topology_name, churned, delay,
                       monkeypatch, reference=False)
    reference = _run_cell(protocol_name, topology_name, churned, delay,
                          monkeypatch, reference=True)
    assert packed == reference, (
        f"packed CSR core diverged from the set-based reference on "
        f"{protocol_name}/{topology_name}/"
        f"{'churn' if churned else 'static'}/{delay or 'fixed'}"
    )


# ----------------------------------------------------------------------
# Kernel-lane differential: the opt-in vector lane must be event-
# identical to the executable-spec python loop on every WILDFIRE cell
# it engages for -- same declared value, same full cost-accounting
# fingerprint, same declaration time.
# ----------------------------------------------------------------------
def _run_lane_cell(topology_name, query, churned, lane, shards=1):
    topology = TOPOLOGIES[topology_name]()
    values = uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)
    churn = _make_churn(topology, churned)
    result = run_protocol(Wildfire(), topology, values, query,
                          querying_host=0, churn=churn, seed=SEED,
                          lane=lane, shards=shards)
    return {
        "value": result.value,
        "cost_fingerprint": result.costs.fingerprint(),
        "declared_at": result.finished_at,
    }


@pytest.mark.parametrize("churned", [False, True], ids=["static", "churn"])
@pytest.mark.parametrize("query", ["min", "max", "count", "sum"])
@pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
def test_vector_lane_is_event_identical_to_spec_lane(
        topology_name, query, churned):
    from repro.simulation import vector_lane

    python = _run_lane_cell(topology_name, query, churned, "python")
    before = vector_lane.engagements
    vector = _run_lane_cell(topology_name, query, churned, "vector")
    assert vector_lane.engagements == before + 1, (
        f"vector lane fell back: {vector_lane.last_fallback_reason}")
    assert vector == python, (
        f"vector lane diverged from the spec loop on wildfire/"
        f"{topology_name}/{query}/{'churn' if churned else 'static'}"
    )


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("churned", [False, True], ids=["static", "churn"])
@pytest.mark.parametrize("query", ["min", "max", "count", "sum"])
@pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
def test_sharded_lane_is_event_identical_to_spec_lane(
        topology_name, query, churned, shards):
    """The epoch-synchronous sharded lane must reproduce the spec loop
    event-for-event at every shard count -- K=1 exercises the epoch
    protocol in-process, K>1 adds the fork/pipe exchange on top."""
    from repro.simulation import sharded

    python = _run_lane_cell(topology_name, query, churned, "python")
    before = sharded.engagements
    result = _run_lane_cell(topology_name, query, churned, "sharded",
                            shards=shards)
    assert sharded.engagements == before + 1, (
        f"sharded lane fell back: {sharded.last_fallback_reason}")
    assert result == python, (
        f"sharded lane (K={shards}) diverged from the spec loop on "
        f"wildfire/{topology_name}/{query}/"
        f"{'churn' if churned else 'static'}"
    )


@pytest.mark.parametrize("delay", ["uniform:0.25,1.0", "heavy_tail:1.2"])
def test_wildfire_stays_oracle_valid_under_churn_and_variable_delay(delay):
    """WILDFIRE's Single-Site Validity claim is stated for any delay at
    most delta; the oracle must keep certifying it when churn and
    variable delay interact."""
    topology = TOPOLOGIES["random"]()
    values = uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)
    churn = _make_churn(topology, True)
    result = run_protocol(Wildfire(), topology, values, "min",
                          querying_host=0, churn=churn, seed=SEED,
                          delay=delay)
    assert result.value is not None
    oracle = Oracle(topology, values, 0)
    assert oracle.is_valid(result.value, "min", churn,
                           horizon=result.termination_time)


@pytest.mark.parametrize("churned", [False, True], ids=["static", "churn"])
def test_wildfire_fm_count_estimates_are_sane_at_scale(churned):
    """The sketch-based count declares a positive, finite estimate whose
    set-level guarantee is anchored by the stable core."""
    topology = random_topology(64, avg_degree=3.0, seed=SEED)
    values = uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)
    churn = _make_churn(topology, churned)
    result = run_protocol(Wildfire(), topology, values, "count",
                          querying_host=0, churn=churn, seed=SEED,
                          repetitions=16)
    assert result.value is not None
    assert 0.0 < result.value < float("inf")
