"""Integration tests for the paper's headline quantitative claims.

The absolute numbers depend on the simulator, but the qualitative findings
must hold: WILDFIRE stays valid under churn where the best-effort protocols
do not, and it pays a constant-factor communication premium for count/sum
while min/max cost about the same as (or less than) SPANNINGTREE.
"""

import pytest

from repro.protocols.base import run_protocol
from repro.protocols.dag import DirectedAcyclicGraph
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.semantics.oracle import Oracle
from repro.simulation.churn import uniform_failure_schedule
from repro.sketches.combiners import FMCountCombiner
from repro.topology.gnutella import gnutella_like_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import constant_values, zipf_values


@pytest.fixture(scope="module")
def gnutella():
    topo = gnutella_like_topology(600, seed=17)
    values = zipf_values(600, seed=17)
    return topo, values


class TestValidityUnderChurn:
    def test_wildfire_count_within_bounds_tree_below(self, gnutella):
        topo, values = gnutella
        oracle = Oracle(topo, values, 0)
        churn = uniform_failure_schedule(range(topo.num_hosts),
                                         num_failures=60, start=0.5, end=14.0,
                                         seed=2, protect=[0])
        combiner = FMCountCombiner(repetitions=24)
        wildfire = run_protocol(Wildfire(), topo, values, "count",
                                combiner=combiner, churn=churn, seed=2)
        tree = run_protocol(SpanningTree(), topo, values, "count",
                            churn=churn, seed=2)
        bounds = oracle.bounds("count", churn, horizon=wildfire.termination_time)
        # WILDFIRE's estimate respects the (approximate) validity bounds.
        assert oracle.is_valid(wildfire.value, "count", churn,
                               horizon=wildfire.termination_time, epsilon=0.5)
        # The tree answer is an exact count of a strict subset of the core.
        assert tree.value < bounds.lower_value

    def test_dag_sits_between_tree_and_wildfire(self, gnutella):
        topo, values = gnutella
        churn = uniform_failure_schedule(range(topo.num_hosts),
                                         num_failures=60, start=0.5, end=14.0,
                                         seed=3, protect=[0])
        combiner = FMCountCombiner(repetitions=24)
        tree = run_protocol(SpanningTree(), topo, values, "count",
                            combiner=FMCountCombiner(repetitions=24),
                            churn=churn, seed=3)
        dag = run_protocol(DirectedAcyclicGraph(3), topo, values, "count",
                           combiner=combiner, churn=churn, seed=3)
        wildfire = run_protocol(Wildfire(), topo, values, "count",
                                combiner=combiner, churn=churn, seed=3)
        assert tree.value <= dag.value * 1.05
        assert dag.value <= wildfire.value * 1.05


class TestPriceOfValidity:
    def test_count_communication_premium_is_constant_factor(self):
        topo = random_topology(400, avg_degree=5, seed=19)
        values = constant_values(400, 1)
        wildfire = run_protocol(Wildfire(), topo, values, "count",
                                combiner=FMCountCombiner(repetitions=8), seed=19)
        tree = run_protocol(SpanningTree(), topo, values, "count", seed=19)
        ratio = wildfire.costs.communication_cost / tree.costs.communication_cost
        # The paper reports roughly 4-5x; we accept the same order of
        # magnitude (well below the 2*D_hat*|E| worst case).
        assert 2.0 <= ratio <= 12.0

    def test_min_max_premium_is_small(self):
        topo = random_topology(400, avg_degree=5, seed=20)
        values = zipf_values(400, seed=20)
        wildfire_min = run_protocol(Wildfire(), topo, values, "min", seed=20)
        tree = run_protocol(SpanningTree(), topo, values, "min", seed=20)
        ratio = wildfire_min.costs.communication_cost / tree.costs.communication_cost
        assert ratio <= 2.5

    def test_time_cost_fixed_by_d_hat_not_by_traffic(self):
        topo = random_topology(300, avg_degree=5, seed=21)
        values = constant_values(300, 1)
        d_hat = 10
        wildfire = run_protocol(Wildfire(), topo, values, "max", d_hat=d_hat, seed=21)
        assert wildfire.termination_time == 2 * d_hat
        # The causal chain is bounded by the flooding depth plus convergecast
        # rounds, i.e. it does not blow up with message volume.
        assert wildfire.costs.time_cost <= 4 * d_hat

    def test_allreport_hotspot_worse_than_wildfire(self):
        from repro.protocols.allreport import AllReport

        topo = random_topology(300, avg_degree=5, seed=22)
        values = constant_values(300, 1)
        allreport = run_protocol(AllReport(), topo, values, "count", seed=22)
        tree = run_protocol(SpanningTree(), topo, values, "count", seed=22)
        # Direct delivery concentrates messages near the querying host.
        assert allreport.costs.computation_cost > tree.costs.computation_cost
