"""Property-based end-to-end tests of the Single-Site Validity guarantee.

Theorem 5.1 states that WILDFIRE is Single-Site Valid for min/max queries on
*any* network and *any* failure pattern that spares the querying host.  We
generate random topologies and random churn schedules with hypothesis and
check the guarantee against the oracle every time.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocols.base import run_protocol
from repro.protocols.wildfire import Wildfire
from repro.semantics.oracle import Oracle
from repro.semantics.validity import stable_core, union_set
from repro.simulation.churn import ChurnSchedule
from repro.topology.random_graph import random_topology
from repro.workloads.values import uniform_values


@st.composite
def network_and_churn(draw):
    """A random small network, values, and a failure schedule sparing host 0."""
    num_hosts = draw(st.integers(min_value=4, max_value=28))
    topo_seed = draw(st.integers(min_value=0, max_value=10_000))
    avg_degree = min(draw(st.sampled_from([2.0, 3.0, 4.0])), float(num_hosts - 1))
    topology = random_topology(num_hosts, avg_degree=avg_degree, seed=topo_seed)
    values = uniform_values(num_hosts, low=1, high=100, seed=topo_seed + 1)

    num_failures = draw(st.integers(min_value=0, max_value=max(0, num_hosts // 3)))
    victims = draw(
        st.lists(st.integers(min_value=1, max_value=num_hosts - 1),
                 min_size=num_failures, max_size=num_failures, unique=True)
    )
    times = draw(
        st.lists(st.floats(min_value=0.1, max_value=12.0,
                           allow_nan=False, allow_infinity=False),
                 min_size=num_failures, max_size=num_failures)
    )
    churn = ChurnSchedule(failures=list(zip(times, victims)))
    return topology, values, churn


@given(network_and_churn(), st.sampled_from(["max", "min"]))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_wildfire_min_max_always_single_site_valid(setup, kind):
    topology, values, churn = setup
    result = run_protocol(Wildfire(), topology, values, kind,
                          querying_host=0, d_hat=topology.num_hosts,
                          churn=churn, seed=0)
    oracle = Oracle(topology, values, 0)
    assert result.value is not None
    assert oracle.is_valid(result.value, kind, churn,
                           horizon=result.termination_time)


@given(network_and_churn())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_stable_core_is_subset_of_union(setup):
    topology, values, churn = setup
    core = stable_core(topology, churn, querying_host=0)
    union = union_set(topology, churn)
    assert core <= union
    assert 0 in core  # the querying host never fails in these schedules


@given(network_and_churn())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_wildfire_max_answer_is_an_actual_host_value(setup):
    """The declared max is always some host's value, never fabricated."""
    topology, values, churn = setup
    result = run_protocol(Wildfire(), topology, values, "max",
                          querying_host=0, d_hat=topology.num_hosts,
                          churn=churn, seed=1)
    assert result.value in set(float(v) for v in values)


@given(st.integers(min_value=4, max_value=30), st.integers(min_value=0, max_value=999))
@settings(max_examples=20, deadline=None)
def test_failure_free_wildfire_matches_exact_answer(num_hosts, seed):
    """Without churn the declared min/max equal the true aggregate."""
    topology = random_topology(num_hosts, avg_degree=3.0, seed=seed)
    values = uniform_values(num_hosts, low=1, high=1000, seed=seed)
    maximum = run_protocol(Wildfire(), topology, values, "max",
                           d_hat=num_hosts, seed=seed)
    minimum = run_protocol(Wildfire(), topology, values, "min",
                           d_hat=num_hosts, seed=seed)
    assert maximum.value == max(values)
    assert minimum.value == min(values)
