"""The cache-correctness invariant of the shared-flood cache.

Two sessions may share a computation key **iff** their solo
:func:`~repro.protocols.base.run_protocol` executions declare
bit-identical results (value and cost fingerprint):

* **if** -- whenever two submissions derive the same key, their solo
  digests must match bit for bit, across protocols, aggregates,
  querying hosts, delay models and seeds (hypothesis sweeps the pair
  space).  This is the direction that makes subscription *sound*: a
  subscriber's reported answer is exactly the answer it would have
  computed alone.
* **only if** -- the key must not over-merge.  The delicate axis is the
  seed: a run that consumes randomness (an FM sketch combiner, a
  coin-flipping protocol, a stochastic delay model) folds its seed into
  the key, because different seeds produce different digests; a fully
  deterministic run leaves the seed out, because every seed produces
  the identical digest and splitting on it would defeat sharing.  Both
  halves are locked per dimension below (digest *values* of two
  structurally different runs can coincide by accident, so the only-if
  direction is exact per-axis, not pointwise).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocols.allreport import AllReport
from repro.protocols.base import protocol_from_spec, run_protocol
from repro.protocols.gossip import PushSumGossip
from repro.queries.query import AggregateQuery
from repro.service import QueryService
from repro.service.sharing import (canonical_delay_spec, computation_key,
                                   seed_sensitive)
from repro.topology.random_graph import random_topology
from repro.workloads.values import uniform_values

#: One fixed small network: the invariant quantifies over submissions,
#: not topologies (the key never contains the network -- both sessions
#: live on the same service substrate by construction).
TOPOLOGY = random_topology(40, avg_degree=4.0, seed=7)
VALUES = uniform_values(TOPOLOGY.num_hosts, low=1, high=50, seed=7)
D_HAT = TOPOLOGY.num_hosts

PROTOCOLS = ["wildfire", "spanning-tree", "dag2"]
AGGREGATES = ["count", "min", "max"]
HOSTS = [0, 9, 23]
DELAYS = [None, "uniform:0.25,1.0"]
SEEDS = [0, 1, 2]


def _resolve(protocol, aggregate):
    proto = protocol_from_spec(protocol)
    query = AggregateQuery.of(aggregate)
    return proto, query, proto.default_combiner(query, repetitions=8)


def _key(spec):
    proto, query, combiner = _resolve(spec["protocol"], spec["aggregate"])
    return computation_key(proto, query, spec["host"], combiner, D_HAT,
                           spec["delay"], spec["seed"])


def _solo_digest(spec):
    result = run_protocol(
        protocol_from_spec(spec["protocol"]), TOPOLOGY, VALUES,
        spec["aggregate"], querying_host=spec["host"],
        seed=spec["seed"], d_hat=D_HAT, delay=spec["delay"])
    return result.value, result.costs.fingerprint()


@st.composite
def submission_pairs(draw):
    """A random submission plus a second one mutated on one dimension.

    Mutating a single axis (or none) keeps key-equal pairs frequent --
    drawing two independent submissions would almost never collide, and
    the soundness direction would go untested.
    """
    base = {
        "protocol": draw(st.sampled_from(PROTOCOLS)),
        "aggregate": draw(st.sampled_from(AGGREGATES)),
        "host": draw(st.sampled_from(HOSTS)),
        "delay": draw(st.sampled_from(DELAYS)),
        "seed": draw(st.sampled_from(SEEDS)),
    }
    axis = draw(st.sampled_from(
        ["none", "seed", "host", "aggregate", "protocol", "delay"]))
    other = dict(base)
    if axis != "none":
        pool = {"seed": SEEDS, "host": HOSTS, "aggregate": AGGREGATES,
                "protocol": PROTOCOLS, "delay": DELAYS}[axis]
        other[axis] = draw(st.sampled_from(
            [choice for choice in pool if choice != base[axis]]))
    return base, other


@given(submission_pairs())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_key_match_implies_bit_identical_solo_runs(pair):
    """Soundness: same key => same solo (value, cost fingerprint)."""
    first, second = pair
    if _key(first) == _key(second):
        assert _solo_digest(first) == _solo_digest(second)


#: Fully deterministic submissions: exact combiner (min/max are always
#: exact; spanning-tree count resolves exact), deterministic protocol,
#: fixed delay.  Their digests cannot depend on the seed.  ALLREPORT at
#: its default p = 1.0 belongs here: every host reports regardless of
#: its coin flips.
DETERMINISTIC = [
    ("wildfire", "min"),
    ("wildfire", "max"),
    ("spanning-tree", "count"),
    ("dag2", "min"),
    ("allreport", "count"),
]

#: Seed-consuming submissions, one per randomness source the key must
#: split on: an FM sketch combiner, a stochastic delay model, and a
#: protocol whose schedule flips coins (ALLREPORT with true sampling).
SEED_SENSITIVE = [
    ("wildfire", "count", None),
    ("spanning-tree", "count", "uniform:0.25,1.0"),
    (AllReport(report_probability=0.5), "count", None),
]


@pytest.mark.parametrize("protocol,aggregate", DETERMINISTIC)
def test_deterministic_runs_share_across_seeds(protocol, aggregate):
    """Only-if, seed axis: a seed-free digest means a seed-free key."""
    proto, query, combiner = _resolve(protocol, aggregate)
    assert not seed_sensitive(proto, combiner, delay_stochastic=False)
    specs = [{"protocol": protocol, "aggregate": aggregate, "host": 9,
              "delay": None, "seed": seed} for seed in (0, 1, 7)]
    keys = {_key(spec) for spec in specs}
    assert len(keys) == 1
    digests = {_solo_digest(spec) for spec in specs}
    assert len(digests) == 1


@pytest.mark.parametrize("protocol,aggregate,delay", SEED_SENSITIVE)
def test_seed_consuming_runs_never_share_across_seeds(
        protocol, aggregate, delay):
    """If, seed axis: a seed-dependent digest forces the seed into the
    key -- and the dependence is real (some seed pair disagrees)."""
    specs = [{"protocol": protocol, "aggregate": aggregate, "host": 9,
              "delay": delay, "seed": seed} for seed in range(6)]
    keys = [_key(spec) for spec in specs]
    assert len(set(keys)) == len(keys)
    # The split is justified: sharing across seeds would have merged
    # runs that declare different results.
    digests = {_solo_digest(spec) for spec in specs[:4]}
    assert len(digests) > 1


def test_protocol_configuration_splits_keys():
    """Same-name protocols configured differently never share: the key
    folds ``config_spec()`` in, and true sampling flips seed-sensitivity."""
    query = AggregateQuery.of("count")
    sampled, full = AllReport(report_probability=0.5), AllReport()
    combiner = full.default_combiner(query, repetitions=8)
    assert (computation_key(sampled, query, 0, combiner, D_HAT, None, 0)
            != computation_key(full, query, 0, combiner, D_HAT, None, 0))
    assert seed_sensitive(sampled, combiner, delay_stochastic=False)
    assert not seed_sensitive(full, combiner, delay_stochastic=False)
    brief, lengthy = PushSumGossip(num_rounds=30), PushSumGossip(num_rounds=60)
    combiner = brief.default_combiner(query, repetitions=8)
    assert (computation_key(brief, query, 0, combiner, D_HAT, None, 0)
            != computation_key(lengthy, query, 0, combiner, D_HAT, None, 0))


def test_delay_model_splits_keys():
    spec = {"protocol": "spanning-tree", "aggregate": "min", "host": 0,
            "seed": 0}
    fixed = _key({**spec, "delay": None})
    uniform = _key({**spec, "delay": "uniform:0.25,1.0"})
    assert fixed != uniform
    # ...but only the *model* matters, not the spelling: None and
    # "fixed" name the same delay configuration.
    assert canonical_delay_spec(None) == canonical_delay_spec(" Fixed ")
    assert fixed == _key({**spec, "delay": "fixed"})


def test_sketch_shape_splits_keys_only_for_sketch_combiners():
    proto, query, _ = _resolve("wildfire", "count")
    narrow = computation_key(proto, query, 0,
                             proto.default_combiner(query, repetitions=4),
                             D_HAT, None, 0)
    wide = computation_key(proto, query, 0,
                           proto.default_combiner(query, repetitions=16),
                           D_HAT, None, 0)
    assert narrow != wide
    # Exact combiners ignore repetitions, so the key does too.
    proto, query, _ = _resolve("spanning-tree", "sum")
    assert (computation_key(proto, query, 0,
                            proto.default_combiner(query, repetitions=4),
                            D_HAT, None, 0)
            == computation_key(proto, query, 0,
                               proto.default_combiner(query, repetitions=16),
                               D_HAT, None, 0))


@pytest.mark.parametrize("delay", [None, "uniform:0.25,1.0"])
def test_subscriber_outcome_is_bit_identical_to_its_solo_run(delay):
    """End to end: a cache hit reports exactly the solo digest.

    Two tenants submit the identical query inside one execution window;
    with sharing on the second subscribes (one flood), and *both*
    outcomes still match the solo run_protocol execution with the
    session's own seed -- the invariant the key construction exists for.
    """
    service = QueryService(TOPOLOGY, VALUES, seed=3, delay=delay,
                           share_floods=True)
    first = service.submit("wildfire", "count", querying_host=9, at=0.0)
    second = service.submit("wildfire", "count", querying_host=9, at=1.0)
    service.run()
    assert service.engine.sharing.hits == 1
    leader = service.poll(first)
    assert not leader.extra.get("cache_hit")
    assert service.poll(second).extra.get("cache_hit") is True
    for qid in (first, second):
        outcome = service.poll(qid)
        solo = run_protocol(
            protocol_from_spec("wildfire"), TOPOLOGY, VALUES, "count",
            querying_host=9, seed=outcome.seed, d_hat=service.d_hat,
            delay=delay)
        assert outcome.value == solo.value
        assert outcome.costs.fingerprint() == solo.costs.fingerprint()
    assert service.poll(second).extra["shared_with"] == first
    assert service.poll(second).value == leader.value
