"""The overload/fairness test matrix for the admission controller.

The controller's contract, exercised over the full configuration
matrix (policy x stats mode x shard count) under the adversarial
overload workload:

* **exactly one terminal outcome per query** -- every submitted query
  ends ``done``, ``failed`` or ``shed``; nothing is left ``deferred``
  or ``pending`` after a run to drain, and nothing is double-counted;
* **fairness counters balance** -- the service-level tallies (shed /
  deferred / degraded / deferrals) are exactly the per-row facts summed
  back up, in every cell of the matrix including the sharded ones
  (where admission decisions may legitimately differ from the
  single-process run, but the books must still balance per shard);
* the policies do what they say: ``shed`` rejects terminally, ``defer``
  retries inside its deadline and sheds past it, ``degrade`` serves a
  staleness-tagged recent answer and falls back to shedding on a miss.
"""

import math

import pytest

from repro.experiments.query_mix import run_query_mix
from repro.protocols.base import protocol_from_spec
from repro.service import AdmissionConfig, QueryService, QueryStatus
from repro.topology.random_graph import random_topology
from repro.workloads.query_mix import adversarial_overload_mix
from repro.workloads.values import uniform_values

TERMINAL = {"done", "failed", "shed"}

#: One overload envelope for the whole matrix: tight enough that the
#: 12-query bursts of the adversarial mix always trip it.
ENVELOPE = dict(max_active_sessions=3, defer_retry=1.0, defer_deadline=6.0)

BASE = dict(num_hosts=80, topology="random", qps=2.0, duration=12.0,
            seed=11, mix=adversarial_overload_mix(qps=2.0, duration=12.0))


def _run_cell(policy, stats, shards, **admission_overrides):
    admission = AdmissionConfig(policy=policy,
                                **{**ENVELOPE, **admission_overrides})
    return run_query_mix(**BASE, stats=stats, shards=shards,
                         share_floods=False, admission=admission)


@pytest.mark.parametrize("shards", [1, 2])
@pytest.mark.parametrize("stats", ["streaming", "full"])
@pytest.mark.parametrize("policy", ["shed", "defer", "degrade"])
def test_overload_matrix_one_terminal_outcome_per_query(
        policy, stats, shards):
    result = _run_cell(policy, stats, shards)
    rows, summary = result["rows"], result["summary"]

    # Every submitted query has exactly one row, and every row ended in
    # exactly one terminal state.
    assert summary["queries"] == len(rows)
    assert len({row["query_id"] for row in rows}) == len(rows)
    statuses = [row["status"] for row in rows]
    assert set(statuses) <= TERMINAL, sorted(set(statuses) - TERMINAL)
    assert summary["deferred"] == 0

    # The terminal tallies partition the submissions...
    shed = statuses.count("shed")
    assert (summary["answered"] + summary["failed"] + shed
            == summary["queries"])
    # ...and the fairness counters are the per-row facts summed back up.
    assert summary["shed"] == shed
    assert summary["degraded"] == sum(
        1 for row in rows if row.get("degraded"))
    assert summary["degraded"] <= summary["answered"]
    if policy in ("shed", "degrade"):
        assert summary["deferrals"] == 0
    # The envelope is tight enough that the bursts actually overloaded
    # the service: some queries did not run to completion normally.
    assert shed + summary["degraded"] + summary["deferrals"] > 0

    # Policy-specific bookkeeping on the rows themselves.
    for row in rows:
        if row["status"] == "shed":
            assert row["value"] is None
            assert row.get("shed_reason") or row.get("defer_reason")
        if row.get("degraded"):
            assert policy == "degrade"
            assert row["status"] == "done"
            assert row["staleness"] >= 0.0
            assert row["source_query"] != row["query_id"]


def test_defer_policy_retries_then_drains():
    """Deferrals happen, and every deferred query still terminates --
    launched inside the deadline or shed at it."""
    result = _run_cell("defer", "streaming", 1)
    summary = result["summary"]
    assert summary["deferrals"] > 0
    assert summary["deferred"] == 0
    deferred_rows = [row for row in result["rows"]
                     if row.get("deferred_retries")]
    assert deferred_rows
    for row in deferred_rows:
        assert row["status"] in TERMINAL
        if row["status"] == "done":
            # A launched deferral records how long admission held it.
            assert row.get("deferred_for", 0.0) >= 0.0


def test_degrade_policy_serves_stale_answers_and_sheds_on_miss():
    """Directed two-tenant scenario: the second identical submission is
    degraded from the first's retired answer; a novel query with no
    cached answer falls back to a shed."""
    topology = random_topology(40, avg_degree=4.0, seed=7)
    values = uniform_values(40, low=1, high=50, seed=7)
    config = AdmissionConfig(policy="degrade", max_active_sessions=1,
                             max_staleness=math.inf)
    service = QueryService(topology, values, seed=3, admission=config)
    first = service.submit("spanning-tree", "count", querying_host=5,
                           at=0.0)
    # The duplicate must arrive after the leader declared (so the recent
    # store holds its answer) -- termination is only resolved at launch,
    # so compute the window from the protocol directly.
    horizon = protocol_from_spec("spanning-tree").termination_time(
        service.d_hat, service.delta) + 1.0
    hit = service.submit("spanning-tree", "count", querying_host=5,
                         at=horizon)
    # Keep the substrate busy at ``horizon`` so admission actually
    # blocks the duplicate (otherwise it would just launch).
    service.submit("wildfire", "count", querying_host=0,
                   at=horizon - 0.5)
    miss = service.submit("spanning-tree", "max", querying_host=9,
                          at=horizon + 0.01)
    report = service.run()

    degraded = service.poll(hit)
    assert degraded.status is QueryStatus.DONE
    assert degraded.extra["degraded"] is True
    assert degraded.extra["source_query"] == first
    assert degraded.extra["staleness"] > 0.0
    assert degraded.value == service.poll(first).value
    assert service.poll(miss).status is QueryStatus.SHED
    assert report.degraded == 1
    assert report.shed == 1


def test_tenant_budget_blocks_heavy_tenant_only():
    """Per-tenant fairness: the tenant that spent its message budget is
    blocked while a fresh tenant's identical query still launches."""
    topology = random_topology(40, avg_degree=4.0, seed=7)
    values = uniform_values(40, low=1, high=50, seed=7)
    config = AdmissionConfig(policy="shed", tenant_message_budget=1)
    service = QueryService(topology, values, seed=3, admission=config)
    heavy_first = service.submit("wildfire", "count", querying_host=5,
                                 at=0.0, stream=77)
    window = protocol_from_spec("wildfire").termination_time(
        service.d_hat, service.delta) + 1.0
    # The same tenant (stream 77) comes back after its first query
    # retired and charged the budget; a new tenant asks alongside.
    heavy_second = service.submit("wildfire", "count", querying_host=5,
                                  at=window, stream=77)
    light = service.submit("wildfire", "count", querying_host=5,
                           at=window, stream=78)
    service.run()
    assert service.poll(heavy_first).status is QueryStatus.DONE
    assert service.poll(heavy_second).status is QueryStatus.SHED
    assert service.poll(heavy_second).extra["shed_reason"] == "tenant_budget"
    assert service.poll(light).status is QueryStatus.DONE


def test_sharded_matrix_merges_admission_tallies():
    """The merged sharded summary's fairness counters equal the sums of
    what each shard actually did (locked via the rows, which carry every
    shard's per-query decisions)."""
    result = _run_cell("shed", "streaming", 2)
    rows, summary = result["rows"], result["summary"]
    assert summary["shards"] == 2
    assert summary["shed"] == sum(
        1 for row in rows if row["status"] == "shed")
    assert (summary["answered"] + summary["failed"] + summary["shed"]
            == summary["queries"])
