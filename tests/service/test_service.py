"""Tests for the multi-tenant query service.

The contract under test (the reason the subsystem exists):

* one shared calendar-queue event loop drives N concurrent queries;
* per-query results and cost attribution are bit-identical across
  re-runs with the same seed, regardless of interleaving;
* a query multiplexed with other tenants is bit-identical to a solo
  :func:`~repro.protocols.base.run_protocol` execution with the same
  session seed (on the same schedule, where no cross-query churn
  interferes);
* sessions retire after declaring, so resident state tracks the number
  of *concurrently active* queries, not the total served.
"""

import pytest

from repro.protocols.base import protocol_from_spec, run_protocol
from repro.queries.query import AggregateQuery
from repro.service import QueryService, QueryStatus
from repro.simulation.churn import ChurnSchedule, JoinSpec, uniform_failure_schedule
from repro.topology.random_graph import random_topology
from repro.workloads.values import uniform_values

SEED = 13


@pytest.fixture
def topology():
    return random_topology(60, avg_degree=4, seed=7)


@pytest.fixture
def values(topology):
    return uniform_values(topology.num_hosts, low=1, high=50, seed=7)


#: A small heterogeneous tenant mix covering every protocol family.
MIX = [
    ("wildfire", "count", 0.0, 0),
    ("spanning-tree", "sum", 1.5, 5),
    ("wildfire", "min", 2.0, 9),
    ("dag2", "count", 2.0, 17),
    ("allreport", "count", 3.25, 3),
    ("gossip", "count", 4.0, 11),
]


def _submit_mix(service):
    return [
        service.submit(protocol, query, at=at, querying_host=host)
        for protocol, query, at, host in MIX
    ]


class TestLifecycle:
    def test_submit_poll_retire(self, topology, values):
        service = QueryService(topology, values, seed=SEED)
        qid = service.submit("wildfire", "count")
        assert service.poll(qid).status is QueryStatus.PENDING
        report = service.run()
        outcome = service.poll(qid)
        assert outcome.status is QueryStatus.DONE
        assert outcome.value is not None
        assert outcome.declared_at == outcome.termination
        assert report.answered == 1
        retired = service.retire(qid)
        assert retired.query_id == qid
        with pytest.raises(KeyError):
            service.poll(qid)

    def test_query_accepts_aggregate_query_objects(self, topology, values):
        service = QueryService(topology, values, seed=SEED)
        qid = service.submit("spanning-tree", AggregateQuery.of("max"))
        service.run()
        assert service.poll(qid).value == float(max(values))

    def test_rejects_bad_submissions(self, topology, values):
        service = QueryService(topology, values, seed=SEED)
        with pytest.raises(ValueError):
            service.submit("wildfire", "count", at=-1.0)
        with pytest.raises(ValueError):
            service.submit("wildfire", "count", querying_host=10_000)
        with pytest.raises(KeyError):
            service.submit("no-such-protocol", "count")

    def test_rejects_launches_behind_the_service_clock(
            self, topology, values):
        # After a horizon-bounded drive the network has already lived
        # through [0, horizon]; a query "launched" earlier would run on
        # a future network state, matching no consistent schedule.
        service = QueryService(topology, values, seed=SEED)
        service.submit("spanning-tree", "count", at=0.0)
        service.run(until=10.0)
        with pytest.raises(ValueError):
            service.submit("wildfire", "count", at=2.0)
        late = service.submit("wildfire", "min",
                              at=service.engine.clock.now + 1.0)
        service.run()
        assert service.poll(late).status is QueryStatus.DONE

    def test_retire_refuses_unfinished_queries(self, topology, values):
        service = QueryService(topology, values, seed=SEED)
        qid = service.submit("wildfire", "count")
        with pytest.raises(ValueError):
            service.retire(qid)      # still pending: nobody could ever
        service.run()                # read the answer after retirement
        assert service.retire(qid).status is QueryStatus.DONE

    def test_querying_host_dead_at_launch_fails_the_query(
            self, topology, values):
        churn = ChurnSchedule(failures=[(1.0, 9)])
        service = QueryService(topology, values, churn=churn, seed=SEED)
        qid = service.submit("wildfire", "min", at=5.0, querying_host=9)
        other = service.submit("wildfire", "min", at=5.0, querying_host=0)
        report = service.run()
        outcome = service.poll(qid)
        assert outcome.status is QueryStatus.FAILED
        assert outcome.value is None
        # The fast-fail path still reports the horizon arithmetic.
        assert outcome.d_hat == service.d_hat
        assert outcome.termination > 0
        assert service.poll(other).status is QueryStatus.DONE
        assert report.answered == 1

    def test_sessions_retire_after_declaring(self, topology, values):
        service = QueryService(topology, values, seed=SEED)
        _submit_mix(service)
        service.run()
        # After the drain every session declared and released its per-host
        # protocol state; the demux table is empty.
        assert service.engine.active_sessions == 0
        for outcome in service.outcomes():
            assert outcome.status is QueryStatus.DONE


class TestDeterminismAndIsolation:
    def test_rerun_is_bit_identical(self, topology, values):
        def run_once():
            service = QueryService(topology, values, seed=SEED)
            ids = _submit_mix(service)
            service.run()
            return [(service.poll(i).value,
                     service.poll(i).costs.fingerprint()) for i in ids]

        assert run_once() == run_once()

    def test_solo_service_run_matches_multiplexed_run(
            self, topology, values):
        multi = QueryService(topology, values, seed=SEED)
        ids = _submit_mix(multi)
        multi.run()
        for (protocol, query, at, host), qid in zip(MIX, ids):
            outcome = multi.poll(qid)
            solo = QueryService(topology, values, seed=SEED)
            solo_qid = solo.submit(protocol, query, at=at,
                                   querying_host=host, seed=outcome.seed)
            solo.run()
            solo_outcome = solo.poll(solo_qid)
            assert solo_outcome.value == outcome.value, protocol
            assert (solo_outcome.costs.fingerprint()
                    == outcome.costs.fingerprint()), protocol

    @pytest.mark.parametrize("delay", [None, "uniform:0.25,1.0",
                                       "heavy_tail:1.2", "per_edge"])
    def test_multiplexed_query_matches_run_protocol(
            self, topology, values, delay):
        """The acceptance contract: a service session is bit-identical to
        a solo run_protocol execution with the session's seed and the
        service's d_hat, for every delay model.

        One carve-out: push-sum gossip under ``per_edge``.  A share sent
        at a round instant over an edge with fixed latency ``d`` arrives
        as ``(a + k) + d`` while the receiver's round timer fires at
        ``(a + d) + k`` -- the same real number, one ulp apart in float
        arithmetic.  The solo kernel keeps the artificial ulp gap; the
        service's absolute mapping collapses it into one slot where the
        deliver-before-timer priority (the model's actual simultaneity
        rule) applies.  Gossip's order-sensitive float sums then differ
        in the last digits, so that single structurally tie-prone cell is
        excluded; every other protocol/model cell must match exactly.
        """
        service = QueryService(topology, values, seed=SEED, delay=delay)
        ids = _submit_mix(service)
        service.run()
        for (protocol, _, _, _), qid in zip(MIX, ids):
            if delay == "per_edge" and protocol == "gossip":
                continue
            outcome = service.poll(qid)
            solo = run_protocol(
                protocol_from_spec(outcome.protocol), topology, values,
                outcome.query.kind.value,
                querying_host=outcome.querying_host,
                seed=outcome.seed, d_hat=service.d_hat, delay=delay)
            assert solo.value == outcome.value, outcome.protocol
            assert (solo.costs.fingerprint()
                    == outcome.costs.fingerprint()), outcome.protocol

    def test_adding_a_tenant_does_not_perturb_existing_ones(
            self, topology, values):
        """Per-query streams mean more load never changes other answers:
        explicit seeds keep sessions comparable across services with
        different tenant counts."""
        base = QueryService(topology, values, seed=SEED)
        base_qid = base.submit("wildfire", "count", at=1.0, seed=12345)
        base.run()
        loaded = QueryService(topology, values, seed=SEED)
        loaded_qid = loaded.submit("wildfire", "count", at=1.0, seed=12345)
        for extra_seed in range(4):
            loaded.submit("wildfire", "count", at=0.5 * extra_seed,
                          querying_host=extra_seed + 1)
        loaded.run()
        assert (loaded.poll(loaded_qid).value
                == base.poll(base_qid).value)
        assert (loaded.poll(loaded_qid).costs.fingerprint()
                == base.poll(base_qid).costs.fingerprint())

    def test_streaming_and_full_attribution_agree(self, topology, values):
        outcomes = {}
        for mode in ("full", "streaming"):
            service = QueryService(topology, values, seed=SEED, stats=mode)
            ids = _submit_mix(service)
            service.run()
            outcomes[mode] = [
                (service.poll(i).value, service.poll(i).costs.fingerprint())
                for i in ids
            ]
        assert outcomes["full"] == outcomes["streaming"]


class TestSharedSubstrate:
    def test_churn_hits_every_overlapping_session(self, topology, values):
        churn = uniform_failure_schedule(
            candidates=list(range(topology.num_hosts)), num_failures=10,
            start=0.5, end=10.0, seed=SEED, protect=[0, 5])
        service = QueryService(topology, values, churn=churn, seed=SEED)
        wf = service.submit("wildfire", "min", at=0.0, querying_host=0)
        tree = service.submit("spanning-tree", "count", at=2.0,
                              querying_host=5)
        report = service.run()
        assert report.answered == 2
        # The tree count can only miss hosts (best-effort under churn).
        assert 1.0 <= service.poll(tree).value <= float(topology.num_hosts)
        # WILDFIRE min stays Single-Site Valid on the shared substrate.
        from repro.semantics.oracle import Oracle

        oracle = Oracle(topology, values, 0)
        outcome = service.poll(wf)
        assert oracle.is_valid(outcome.value, "min", churn,
                               horizon=outcome.termination)

    def test_joins_extend_active_sessions(self, topology, values):
        churn = ChurnSchedule(joins=[JoinSpec(time=1.0, neighbors=(0, 3))])
        service = QueryService(topology, values, churn=churn, seed=SEED)
        early = service.submit("wildfire", "min", at=0.0)
        late = service.submit("wildfire", "min", at=5.0)
        service.run()
        # Both sessions completed on the grown network: the early one was
        # extended mid-flight, the late one padded its table at launch.
        assert service.poll(early).value == float(min(values))
        assert service.poll(late).value == float(min(values))
        assert service.engine.network.num_hosts == topology.num_hosts + 1

    def test_late_messages_are_counted_not_delivered(self, topology, values):
        # A query's convergecast traffic can still be in flight at its
        # declaration instant; those deliveries must never wake retired
        # protocol state.
        service = QueryService(topology, values, seed=SEED)
        _submit_mix(service)
        report = service.run()
        assert report.answered == len(MIX)
        assert report.late_messages >= 0
        assert report.messages_sent > 0

    def test_horizon_past_deadline_finalizes_without_later_events(
            self, topology, values):
        """A horizon-bounded drive must leave poll() accurate: a query
        whose deadline lies inside the horizon declares even when the
        only remaining queued events belong to a far-future tenant."""
        service = QueryService(topology, values, seed=SEED)
        near = service.submit("spanning-tree", "count", at=0.0)
        far = service.submit("spanning-tree", "count", at=500.0)
        service.run(until=100.0)
        outcome = service.poll(near)
        assert outcome.status is QueryStatus.DONE
        assert outcome.value == float(topology.num_hosts)
        assert service.poll(far).status is QueryStatus.PENDING
        # The finished session released its protocol state too.
        assert service.engine.active_sessions == 0
        service.run()
        assert service.poll(far).status is QueryStatus.DONE

    def test_incompatible_combiner_is_rejected_at_submit(
            self, topology, values):
        from repro.sketches.combiners import combiner_for_query

        service = QueryService(topology, values, seed=SEED)
        healthy = service.submit("wildfire", "count", at=0.0)
        with pytest.raises(ValueError):
            service.submit("wildfire", "count",
                           combiner=combiner_for_query("count", exact=True))
        service.run()
        assert service.poll(healthy).status is QueryStatus.DONE

    def test_a_session_that_cannot_launch_fails_alone(
            self, topology, values):
        """A launch-time blow-up (broken protocol object) must strand
        only its own tenant, never abort the shared drain."""
        from repro.protocols.wildfire import Wildfire

        class BrokenProtocol(Wildfire):
            name = "broken"

            def create_hosts(self, *args, **kwargs):
                raise RuntimeError("exploding host factory")

        service = QueryService(topology, values, seed=SEED)
        broken = service.submit(BrokenProtocol(), "count", at=1.0)
        healthy = service.submit("wildfire", "count", at=0.0)
        report = service.run()
        assert service.poll(broken).status is QueryStatus.FAILED
        assert "exploding" in service.poll(broken).extra["error"]
        assert service.poll(healthy).status is QueryStatus.DONE
        assert report.answered == 1

    def test_horizon_bounded_run_resumes(self, topology, values):
        service = QueryService(topology, values, seed=SEED)
        qid = service.submit("wildfire", "count", at=0.0)
        service.run(until=1.0)
        assert service.poll(qid).status is QueryStatus.RUNNING
        service.run()
        assert service.poll(qid).status is QueryStatus.DONE
        # A later run() continues where the bounded one stopped; the
        # result matches an unbounded single drive.
        reference = QueryService(topology, values, seed=SEED)
        ref_qid = reference.submit("wildfire", "count", at=0.0)
        reference.run()
        assert service.poll(qid).value == reference.poll(ref_qid).value
        assert (service.poll(qid).costs.fingerprint()
                == reference.poll(ref_qid).costs.fingerprint())
