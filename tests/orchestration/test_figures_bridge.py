"""The figures <-> orchestration bridge and the runner workers= path."""

import pytest

from repro.experiments.figures import figure_spec, run_figure, run_figure_matrix
from repro.experiments.runner import run_trials, run_trials_multi
from repro.orchestration.spec import derive_trial_seed


def test_figure_spec_identity_tracks_figure_and_scale():
    a = figure_spec("fig6", scale=0.1)
    b = figure_spec("fig6", scale=0.1)
    c = figure_spec("fig6", scale=0.2)
    assert a.content_hash() == b.content_hash()
    assert a.content_hash() != c.content_hash()
    with pytest.raises(KeyError):
        figure_spec("fig99")


def test_run_figure_matrix_matches_direct_driver_call():
    spec = figure_spec("fig6", scale=0.05, num_trials=1)
    report = run_figure_matrix(["fig6"], scale=0.05, num_trials=1)["fig6"]
    assert report.spec_hash == spec.content_hash()
    seed = derive_trial_seed(spec.content_hash(), 0, 0)
    assert report.values[0] == run_figure("fig6", scale=0.05, seed=seed)


def scalar_trial(seed: int) -> float:
    return float(seed % 7)


def multi_trial(seed: int):
    return {"a": float(seed), "b": float(seed * 2)}


def test_run_trials_workers_path_matches_serial():
    serial = run_trials(scalar_trial, num_trials=5, base_seed=3)
    pooled = run_trials(scalar_trial, num_trials=5, base_seed=3, workers=2)
    assert serial == pooled


def test_run_trials_multi_workers_path_matches_serial():
    serial = run_trials_multi(multi_trial, num_trials=4, base_seed=1)
    pooled = run_trials_multi(multi_trial, num_trials=4, base_seed=1,
                              workers=3)
    assert serial == pooled


def test_run_trials_still_validates_num_trials():
    with pytest.raises(ValueError):
        run_trials(scalar_trial, num_trials=0)
    with pytest.raises(ValueError):
        run_trials_multi(multi_trial, num_trials=0)
