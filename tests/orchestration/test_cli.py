"""CLI smoke tests: run with cache, figures listing, cache ls/clear."""

import pytest

from repro.orchestration.cli import main

#: Cheapest figure configuration that still exercises a real driver.
RUN_ARGS = ["--scale", "0.05", "--trials", "1"]


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def test_figures_lists_every_registered_figure(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    from repro.experiments.figures import FIGURES

    for figure_id in FIGURES:
        assert figure_id in out


def test_run_then_cached_rerun(cache_dir, capsys):
    assert main(["run", "fig6", *RUN_ARGS, "--cache-dir", cache_dir]) == 0
    cold = capsys.readouterr().out
    assert "1 trials (0 cached, 1 executed)" in cold

    assert main(["run", "fig6", *RUN_ARGS, "--cache-dir", cache_dir]) == 0
    warm = capsys.readouterr().out
    assert "1 trials (1 cached, 0 executed)" in warm

    # The printed result table is identical between cold and warm runs.
    table = [line for line in cold.splitlines()
             if line.startswith(("count", "sum"))]
    assert table and table == \
        [line for line in warm.splitlines()
         if line.startswith(("count", "sum"))]


def test_run_unknown_figure_fails_cleanly(cache_dir, capsys):
    assert main(["run", "fig99", "--cache-dir", cache_dir]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_cache_ls_and_targeted_clear(cache_dir, capsys):
    main(["run", "fig6", *RUN_ARGS, "--cache-dir", cache_dir])
    capsys.readouterr()

    assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
    listing = capsys.readouterr().out
    assert "figure" in listing

    # Grab the hash from the listing and clear exactly that record.
    spec_hash = next(
        line.split()[0] for line in listing.splitlines()
        if line and not line.startswith(("Cache", "hash", "-"))
    )
    assert main(["cache", "clear", spec_hash[:10],
                 "--cache-dir", cache_dir]) == 0
    assert "removed 1 record(s)" in capsys.readouterr().out

    assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
    assert "empty" in capsys.readouterr().out


def test_cache_clear_requires_target(cache_dir, capsys):
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 2
    assert "--all" in capsys.readouterr().err


def test_no_cache_leaves_no_records(cache_dir, tmp_path, capsys):
    assert main(["run", "fig6", *RUN_ARGS, "--no-cache", "-q",
                 "--cache-dir", cache_dir]) == 0
    assert not (tmp_path / "cache").exists()
