"""CLI smoke tests: run with cache, figures listing, cache ls/clear."""

import pytest

from repro.orchestration.cli import main

#: Cheapest figure configuration that still exercises a real driver.
RUN_ARGS = ["--scale", "0.05", "--trials", "1"]


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def test_figures_lists_every_registered_figure(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    from repro.experiments.figures import FIGURES

    for figure_id in FIGURES:
        assert figure_id in out


def test_run_then_cached_rerun(cache_dir, capsys):
    assert main(["run", "fig6", *RUN_ARGS, "--cache-dir", cache_dir]) == 0
    cold = capsys.readouterr().out
    assert "1 trials (0 cached, 1 executed)" in cold

    assert main(["run", "fig6", *RUN_ARGS, "--cache-dir", cache_dir]) == 0
    warm = capsys.readouterr().out
    assert "1 trials (1 cached, 0 executed)" in warm

    # The printed result table is identical between cold and warm runs.
    table = [line for line in cold.splitlines()
             if line.startswith(("count", "sum"))]
    assert table and table == \
        [line for line in warm.splitlines()
         if line.startswith(("count", "sum"))]


def test_run_unknown_figure_fails_cleanly(cache_dir, capsys):
    assert main(["run", "fig99", "--cache-dir", cache_dir]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_cache_ls_and_targeted_clear(cache_dir, capsys):
    main(["run", "fig6", *RUN_ARGS, "--cache-dir", cache_dir])
    capsys.readouterr()

    assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
    listing = capsys.readouterr().out
    assert "figure" in listing

    # Grab the hash from the listing and clear exactly that record.
    spec_hash = next(
        line.split()[0] for line in listing.splitlines()
        if line and not line.startswith(("Cache", "hash", "-"))
    )
    assert main(["cache", "clear", spec_hash[:10],
                 "--cache-dir", cache_dir]) == 0
    assert "removed 1 record(s)" in capsys.readouterr().out

    assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
    assert "empty" in capsys.readouterr().out


def test_cache_clear_requires_target(cache_dir, capsys):
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 2
    assert "--all" in capsys.readouterr().err


def test_no_cache_leaves_no_records(cache_dir, tmp_path, capsys):
    assert main(["run", "fig6", *RUN_ARGS, "--no-cache", "-q",
                 "--cache-dir", cache_dir]) == 0
    assert not (tmp_path / "cache").exists()


def test_bench_streaming_variable_delay_row(capsys):
    assert main(["bench", "--hosts", "64", "--topology", "random",
                 "--stats", "streaming", "--delay", "uniform:0.5,1.0"]) == 0
    captured = capsys.readouterr()
    assert "streaming" in captured.out
    assert "uniform:0.5,1.0" in captured.out
    assert "peak_rss_mb" in captured.out
    assert "accounting_bytes" in captured.out


def test_bench_unknown_delay_model_fails_cleanly(capsys):
    assert main(["bench", "--hosts", "64", "--delay", "warp"]) == 2
    assert "unknown delay model" in capsys.readouterr().err


def test_bench_profile_prints_cumulative_top(capsys):
    assert main(["bench", "--hosts", "64", "--topology", "random",
                 "--profile"]) == 0
    err = capsys.readouterr().err
    assert "Ordered by: cumulative time" in err
    assert "run_protocol" in err


def test_delay_sweep_command_prints_rows(capsys):
    assert main(["delay-sweep", "--size", "40", "--topology", "random",
                 "--departures", "0", "-t", "1",
                 "--delays", "fixed", "heavy_tail:1.2"]) == 0
    out = capsys.readouterr().out
    assert "valid_fraction" in out
    assert "heavy_tail:1.2" in out
    assert "wildfire" in out


def test_delay_sweep_rejects_unknown_topology(capsys):
    assert main(["delay-sweep", "--topology", "moebius"]) == 2
    assert "unknown topology" in capsys.readouterr().err


def test_run_accepts_streaming_stats(cache_dir, capsys):
    """--stats streaming flips the process default for the run (and
    restores it afterwards); figure results keep the same measures, so
    the run succeeds and prints its table."""
    from repro.simulation.stats import default_stats_mode

    assert main(["run", "fig6", *RUN_ARGS, "--no-cache",
                 "--stats", "streaming"]) == 0
    assert "1 trials" in capsys.readouterr().out
    assert default_stats_mode() == "full"


def test_run_streaming_stats_requires_single_worker(capsys):
    """Worker processes would not inherit the stats mode, so the
    combination is rejected instead of silently using full accounting."""
    assert main(["run", "fig6", *RUN_ARGS, "--no-cache",
                 "--stats", "streaming", "--workers", "2"]) == 2
    assert "--workers 1" in capsys.readouterr().err


def test_bench_profile_refuses_trajectory_json(tmp_path, capsys):
    """Profiled timings carry tracing overhead and must never land in a
    trajectory file."""
    out = str(tmp_path / "traj.json")
    assert main(["bench", "--hosts", "64", "--topology", "random",
                 "--profile", "--json", out]) == 2
    assert "--profile" in capsys.readouterr().err


def test_serve_runs_a_small_mix_and_reports(tmp_path, capsys):
    """`repro serve` drives the multi-tenant query service end to end:
    per-query rows, a service summary with a determinism digest, and an
    optional JSON report artifact."""
    import json

    report_path = str(tmp_path / "serve.json")
    assert main(["serve", "--hosts", "120", "--topology", "random",
                 "--qps", "1", "--duration", "8", "--stats", "streaming",
                 "--rows", "3", "--json", report_path]) == 0
    out = capsys.readouterr().out
    assert "Service summary" in out
    assert "determinism_digest" in out
    with open(report_path) as handle:
        payload = json.load(handle)
    assert payload["summary"]["answered"] >= 1
    assert payload["summary"]["answered"] == sum(
        1 for row in payload["rows"] if row["status"] == "done")
    assert all("cost_fingerprint" in row for row in payload["rows"]
               if row["status"] == "done")


def test_serve_is_deterministic_across_invocations(capsys):
    args = ["serve", "--hosts", "80", "--topology", "random",
            "--qps", "1", "--duration", "6", "--rows", "0"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out

    def digest(text):
        # The determinism digest is the only 64-char hex token printed.
        import re

        return re.search(r"\b[0-9a-f]{64}\b", text).group(0)

    # Wall-clock columns differ run to run; every simulated result
    # (values + per-query cost fingerprints) hashes identically.
    assert digest(first) == digest(second)


def test_serve_rejects_bad_parameters(capsys):
    assert main(["serve", "--hosts", "1"]) == 2
    assert "--hosts" in capsys.readouterr().err
    assert main(["serve", "--qps", "0"]) == 2
    assert "--qps" in capsys.readouterr().err
    assert main(["serve", "--hosts", "64", "--topology", "moebius"]) == 2
    assert "unknown topology" in capsys.readouterr().err
    assert main(["serve", "--hosts", "64", "--wildfire-share", "2"]) == 2
    assert "--wildfire-share" in capsys.readouterr().err
