"""Executor: parallel determinism, incremental resume, seed mapping."""

from typing import Any, Dict

import pytest

from repro.orchestration.executor import ParallelExecutor, map_over_seeds, run_spec
from repro.orchestration.runners import resolve_runner
from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore


def echo_runner(params: Dict[str, Any], seed: int):
    """Module-level so it resolves by import path inside pool workers."""
    return {"x": params.get("x"), "seed": seed}


ECHO = f"{__name__}:echo_runner"


def tiny_matrix_spec(num_trials=2):
    """A real (topology x protocol x aggregate) matrix, small enough for CI."""
    return ExperimentSpec.create(
        "tiny validity matrix",
        "validity-point",
        axes={
            "topology": ["ring", "star"],
            "protocol": ["wildfire", "spanning-tree"],
            "aggregate": ["count"],
            "size": [16],
        },
        num_trials=num_trials,
    )


def test_worker_count_does_not_change_results():
    """Determinism regression: workers=1 and workers=4 agree bit-for-bit."""
    spec_serial = tiny_matrix_spec()
    spec_pool = tiny_matrix_spec()
    assert spec_serial.content_hash() == spec_pool.content_hash()

    serial = run_spec(spec_serial, workers=1)
    pooled = run_spec(spec_pool, workers=4)

    assert serial.spec_hash == pooled.spec_hash
    assert [t.seed for t in serial.results] == [t.seed for t in pooled.results]
    assert serial.values == pooled.values
    assert serial.workers == 1 and pooled.workers == 4


def test_trial_order_is_by_index_regardless_of_completion_order():
    spec = ExperimentSpec.create("echo", ECHO, axes={"x": [1, 2, 3]},
                                 num_trials=2)
    report = run_spec(spec, workers=3)
    assert [t.index for t in report.results] == list(range(6))
    assert [t.value["x"] for t in report.results] == [1, 1, 2, 2, 3, 3]


def test_incremental_resume_runs_only_missing_trials(tmp_path):
    store = ResultStore(tmp_path)
    small = ExperimentSpec.create("echo", ECHO, axes={"x": [1]}, num_trials=2)
    run_spec(small, store=store)

    # Simulate an interrupted run by dropping one trial from the record.
    spec_hash = small.cache_key()
    record = store.load(spec_hash)
    del record["trials"]["1"]
    store.save(spec_hash, record)

    resumed = run_spec(small, store=store)
    assert resumed.num_cached == 1
    assert resumed.num_executed == 1
    # The recomputed trial matches what a fresh full run produces.
    fresh = run_spec(small, store=None)
    assert resumed.values == fresh.values


def failing_runner(params, seed):
    if params.get("x") == 2:
        raise RuntimeError("boom")
    return {"x": params.get("x")}


FAILING = f"{__name__}:failing_runner"


def test_completed_trials_persist_when_a_later_trial_fails(tmp_path):
    store = ResultStore(tmp_path)
    spec = ExperimentSpec.create("partial", FAILING, axes={"x": [1, 2]})
    with pytest.raises(RuntimeError, match="boom"):
        run_spec(spec, store=store)  # serial: trial 0 completes, trial 1 raises
    surviving = store.cached_trials(spec.cache_key())
    assert list(surviving) == [0]
    assert surviving[0]["value"] == {"x": 1}


def test_run_many_shares_one_pool_across_specs(tmp_path):
    from repro.orchestration.executor import run_specs

    store = ResultStore(tmp_path)
    specs = [ExperimentSpec.create(f"echo-{x}", ECHO, axes={"x": [x]})
             for x in (10, 20, 30)]
    reports = run_specs(specs, workers=3, store=store)
    assert [r.values[0]["x"] for r in reports] == [10, 20, 30]
    assert all(store.has(r.cache_key) for r in reports)
    # Identical to running each spec on its own.
    solo = [run_spec(spec) for spec in specs]
    assert [r.values for r in reports] == [r.values for r in solo]


def test_force_recomputes_and_rewrites(tmp_path):
    store = ResultStore(tmp_path)
    spec = ExperimentSpec.create("echo", ECHO, axes={"x": [5]})
    first = run_spec(spec, store=store)
    forced = run_spec(spec, store=store, force=True)
    assert forced.num_executed == 1
    assert forced.values == first.values


def test_run_without_store_is_supported():
    spec = ExperimentSpec.create("echo", ECHO, axes={"x": [9]})
    report = run_spec(spec)
    assert report.values == [{"x": 9, "seed": report.results[0].seed}]
    assert not report.fully_cached


def test_progress_callback_reports_cache_and_trials(tmp_path):
    store = ResultStore(tmp_path)
    spec = ExperimentSpec.create("echo", ECHO, axes={"x": [1, 2]})
    messages = []
    run_spec(spec, store=store, progress=messages.append)
    assert len(messages) == 2  # one per executed trial
    messages.clear()
    run_spec(spec, store=store, progress=messages.append)
    assert any("cached" in message for message in messages)


def test_executor_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ParallelExecutor(workers=0)


def test_map_over_seeds_matches_serial_path():
    seeds = [3, 1, 4, 1, 5]
    assert map_over_seeds(square_seed, seeds, workers=1) == \
        map_over_seeds(square_seed, seeds, workers=2) == \
        [seed * seed for seed in seeds]


def square_seed(seed: int) -> int:
    return seed * seed


def test_import_path_runner_resolution():
    assert resolve_runner(ECHO) is echo_runner
    with pytest.raises(KeyError):
        resolve_runner("no-such-runner")
    with pytest.raises((KeyError, ModuleNotFoundError)):
        resolve_runner("no.such.module:func")
