"""ResultStore: content addressing, corruption handling, targeted eviction."""

import json

from repro.orchestration.executor import run_spec
from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore


def counting_runner(params, seed):
    """Import-path runner that also counts invocations via a side file."""
    import os

    path = os.environ["COUNTING_RUNNER_LOG"]
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{params.get('x')}:{seed}\n")
    return {"x": params.get("x"), "seed": seed}


COUNTING = f"{__name__}:counting_runner"


def make_spec(x=1, trials=1):
    return ExperimentSpec.create("counted", COUNTING, axes={"x": [x]},
                                 num_trials=trials)


def invocations(log_path) -> int:
    if not log_path.exists():
        return 0
    return len(log_path.read_text().splitlines())


def test_cache_miss_then_hit(tmp_path, monkeypatch):
    log = tmp_path / "calls.log"
    monkeypatch.setenv("COUNTING_RUNNER_LOG", str(log))
    store = ResultStore(tmp_path / "cache")
    spec = make_spec(trials=2)

    assert store.load(spec.cache_key()) is None  # miss
    cold = run_spec(spec, store=store)
    assert invocations(log) == 2
    assert store.has(spec.cache_key())

    warm = run_spec(spec, store=store)
    assert invocations(log) == 2  # nothing recomputed
    assert warm.fully_cached
    assert warm.values == cold.values


def test_corrupt_record_falls_back_to_recompute(tmp_path, monkeypatch):
    log = tmp_path / "calls.log"
    monkeypatch.setenv("COUNTING_RUNNER_LOG", str(log))
    store = ResultStore(tmp_path / "cache")
    spec = make_spec()
    cold = run_spec(spec, store=store)

    path = store.path_for(spec.cache_key())
    path.write_text("{ this is not json", encoding="utf-8")
    assert store.load(spec.cache_key()) is None

    recovered = run_spec(spec, store=store)
    assert invocations(log) == 2  # recomputed once
    assert recovered.num_executed == 1
    assert recovered.values == cold.values
    # The rewritten record is valid again.
    assert store.has(spec.cache_key())


def test_record_with_wrong_hash_or_shape_is_ignored(tmp_path):
    store = ResultStore(tmp_path)
    spec = make_spec()
    spec_hash = spec.cache_key()
    path = store.path_for(spec_hash)
    path.parent.mkdir(parents=True)

    path.write_text(json.dumps({"hash": "f" * 64, "trials": {}}))
    assert store.load(spec_hash) is None
    path.write_text(json.dumps({"hash": spec_hash, "trials": "oops"}))
    assert store.load(spec_hash) is None
    path.write_text(json.dumps([1, 2, 3]))
    assert store.load(spec_hash) is None


def test_clear_removes_only_the_targeted_spec(tmp_path, monkeypatch):
    monkeypatch.setenv("COUNTING_RUNNER_LOG", str(tmp_path / "calls.log"))
    store = ResultStore(tmp_path / "cache")
    spec_a, spec_b = make_spec(x=1), make_spec(x=2)
    run_spec(spec_a, store=store)
    run_spec(spec_b, store=store)
    assert len(store.entries()) == 2

    removed = store.clear(spec_a.cache_key())
    assert removed == 1
    assert not store.has(spec_a.cache_key())
    assert store.has(spec_b.cache_key())

    # Prefix eviction and clear-all.
    run_spec(spec_a, store=store)
    assert store.clear(spec_b.cache_key()[:12]) == 1
    assert store.clear() == 1
    assert store.entries() == []


def test_clear_refuses_short_or_ambiguous_prefixes(tmp_path, monkeypatch):
    monkeypatch.setenv("COUNTING_RUNNER_LOG", str(tmp_path / "calls.log"))
    store = ResultStore(tmp_path / "cache")
    run_spec(make_spec(x=1), store=store)
    run_spec(make_spec(x=2), store=store)

    import pytest

    with pytest.raises(ValueError, match="too short"):
        store.clear("3")

    # Craft a second record sharing an 8-char prefix to force ambiguity.
    real = store.entries()[0]["hash"]
    twin = real[:8] + "0" * 56
    store.path_for(twin).write_text("{}")
    with pytest.raises(ValueError, match="ambiguous"):
        store.clear(real[:8])
    assert len(store.entries()) == 3  # nothing was deleted
    # The full hash still targets exactly one record.
    assert store.clear(real) == 1


def test_duplicate_specs_share_one_execution(tmp_path, monkeypatch):
    from repro.orchestration.executor import run_specs

    log = tmp_path / "calls.log"
    monkeypatch.setenv("COUNTING_RUNNER_LOG", str(log))
    store = ResultStore(tmp_path / "cache")
    spec = make_spec(trials=2)
    reports = run_specs([spec, spec], store=store)
    assert invocations(log) == 2  # not 4: identical specs pooled
    assert reports[0].values == reports[1].values


def test_entries_report_corrupt_records(tmp_path, monkeypatch):
    monkeypatch.setenv("COUNTING_RUNNER_LOG", str(tmp_path / "calls.log"))
    store = ResultStore(tmp_path / "cache")
    spec = make_spec()
    run_spec(spec, store=store)
    store.path_for(spec.cache_key()).write_text("garbage")
    entries = store.entries()
    assert len(entries) == 1
    assert entries[0]["name"] == "<corrupt>"


def test_default_root_honours_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert ResultStore().root == tmp_path / "elsewhere"
