"""ExperimentSpec: canonical hashing, expansion, and seed derivation."""

import pytest

from repro.orchestration.spec import ExperimentSpec, derive_trial_seed


def make_spec(**overrides):
    kwargs = dict(
        name="spec under test",
        runner="figure",
        axes={"figure": ["fig6"], "scale": [0.5]},
        num_trials=3,
        base_seed=0,
    )
    kwargs.update(overrides)
    return ExperimentSpec.create(**kwargs)


def test_hash_is_stable_across_processes_and_calls():
    spec = make_spec()
    assert spec.content_hash() == make_spec().content_hash()
    # Pin the digest: a change here invalidates every existing cache entry,
    # so it must be deliberate.
    assert len(spec.content_hash()) == 64


def test_hash_ignores_axis_insertion_order_and_name():
    a = ExperimentSpec.create("a", "figure",
                              axes={"figure": ["fig7"], "scale": [0.3]})
    b = ExperimentSpec.create("some other label", "figure",
                              axes={"scale": [0.3], "figure": ["fig7"]})
    assert a.content_hash() == b.content_hash()


@pytest.mark.parametrize("overrides", [
    {"runner": "validity-point"},
    {"axes": {"figure": ["fig7"], "scale": [0.5]}},
    {"axes": {"figure": ["fig6"], "scale": [0.25]}},
    {"num_trials": 4},
    {"base_seed": 7},
])
def test_hash_changes_with_identity_fields(overrides):
    assert make_spec().content_hash() != make_spec(**overrides).content_hash()


def test_points_is_cartesian_product_in_canonical_order():
    spec = ExperimentSpec.create(
        "matrix", "validity-point",
        axes={"topology": ["ring", "grid"], "protocol": ["wildfire"],
              "size": [16, 32]},
    )
    points = spec.points()
    assert len(points) == 4
    assert points[0] == {"protocol": "wildfire", "size": 16, "topology": "ring"}
    # Axes iterate in sorted-name order and later axes vary fastest, so
    # "topology" (last alphabetically) alternates while "size" varies slower.
    assert [p["topology"] for p in points] == ["ring", "grid", "ring", "grid"]
    assert [p["size"] for p in points] == [16, 16, 32, 32]


def test_trials_are_seeded_from_spec_hash_and_index():
    spec = make_spec(num_trials=4)
    trials = spec.trials()
    assert [t.index for t in trials] == [0, 1, 2, 3]
    spec_hash = spec.content_hash()
    for trial in trials:
        assert trial.seed == derive_trial_seed(spec_hash, 0, trial.index)
    assert len({t.seed for t in trials}) == 4  # distinct per index
    # Re-expansion yields the same seeds.
    assert [t.seed for t in spec.trials()] == [t.seed for t in trials]


def test_version_bump_evicts_cache_but_keeps_seeds(monkeypatch):
    spec = make_spec()
    hash_before = spec.content_hash()
    key_before = spec.cache_key()
    seeds_before = [t.seed for t in spec.trials()]

    monkeypatch.setattr("repro.__version__", "999.0.0")
    bumped = make_spec()
    # Cache key moves (old results are never served for new code)...
    assert bumped.cache_key() != key_before
    # ...but the spec identity and every derived seed are unchanged, so
    # the experiment's numbers are stable across releases.
    assert bumped.content_hash() == hash_before
    assert [t.seed for t in bumped.trials()] == seeds_before


def test_different_specs_derive_different_seed_streams():
    seeds_a = [t.seed for t in make_spec(num_trials=3).trials()]
    seeds_b = [t.seed for t in make_spec(num_trials=3, base_seed=1).trials()]
    assert seeds_a != seeds_b


def test_num_cells_counts_points_times_trials():
    spec = ExperimentSpec.create(
        "matrix", "validity-point",
        axes={"topology": ["ring", "grid"], "size": [16, 32, 64]},
        num_trials=2,
    )
    assert spec.num_cells == 12
    assert len(spec.trials()) == 12


def test_create_rejects_bad_inputs():
    with pytest.raises(ValueError):
        make_spec(num_trials=0)
    with pytest.raises(ValueError):
        make_spec(axes={"figure": []})
    with pytest.raises(TypeError):
        make_spec(axes={"figure": [["nested", "list"]]})
