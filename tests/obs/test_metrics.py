"""Tests for the metrics registry and its pull collectors.

Metrics are pull-based: every collector reads structures the engines
already maintain, so the tests here double as a contract that those
structures (queue occupancy, per-tenant demux state, session table)
stay consistent with the engine's own accounting.
"""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    collect_queue_metrics,
    collect_run_metrics,
    collect_service_metrics,
    collect_shard_metrics,
    worker_utilisation,
)
from repro.protocols.base import run_protocol
from repro.protocols.wildfire import Wildfire
from repro.service import QueryService
from repro.simulation.events import EventKind, EventQueue
from repro.topology.random_graph import random_topology
from repro.workloads.values import uniform_values

SEED = 17


@pytest.fixture
def topology():
    return random_topology(60, avg_degree=4, seed=SEED)


@pytest.fixture
def values(topology):
    return uniform_values(topology.num_hosts, low=1, high=50, seed=SEED)


class TestRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc(3)
        registry.counter("a.count").inc(4)
        registry.gauge("b.depth").set(12)
        hist = registry.histogram("c.residency")
        for sample in (2.0, 8.0, 5.0):
            hist.observe(sample)
        snapshot = registry.snapshot()
        assert snapshot["a.count"] == 7
        assert snapshot["b.depth"] == 12
        assert snapshot["c.residency"] == {
            "count": 3, "sum": 15.0, "min": 2.0, "max": 8.0, "mean": 5.0}
        assert list(snapshot) == sorted(snapshot)

    def test_counters_only_move_forward(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_name_collisions_across_types_are_errors(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestRunCollector:
    def test_collects_cost_sink_of_a_run(self, topology, values):
        result = run_protocol(Wildfire(), topology, values, "count",
                              seed=SEED)
        snapshot = collect_run_metrics(result).snapshot()
        assert snapshot["run.messages_sent"] == result.costs.messages_sent
        assert snapshot["run.computation_cost"] == \
            result.costs.computation_cost
        assert snapshot["run.accounting_bytes"] > 0


class TestQueueCollector:
    def test_occupancy_matches_pending_population(self):
        queue = EventQueue()
        for i in range(25):
            queue.push(float(i % 7), EventKind.TIMER, host=i,
                       timer_name="t")
        cancelled = queue.push(3.0, EventKind.TIMER, host=99,
                               timer_name="t")
        queue.cancel(cancelled)
        snapshot = collect_queue_metrics(queue).snapshot()
        assert snapshot["queue.pending"] == len(queue) == 25
        assert snapshot["queue.cancelled"] == 1
        assert snapshot["queue.max_day_occupancy"] >= \
            snapshot["queue.mean_day_occupancy"] > 0

    def test_iter_pending_agrees_with_len(self):
        queue = EventQueue()
        for i in range(40):
            queue.push(float(i % 11), EventKind.TIMER, host=i,
                       timer_name="t")
        assert sum(w for _, w in queue.iter_pending()) == len(queue)

    def test_window_fields_gauge_when_live_and_skip_when_empty(self):
        queue = EventQueue(width=2.0)
        # Empty queue: the horizon fields are None ("no next event" is
        # not a number) and must be skipped, not gauged.
        empty = collect_queue_metrics(queue).snapshot()
        assert "queue.horizon" not in empty
        assert "queue.current_epoch" not in empty
        queue.push(5.0, EventKind.TIMER, host=0, timer_name="t")
        live = collect_queue_metrics(queue).snapshot()
        assert live["queue.horizon"] == 5.0
        assert live["queue.current_epoch"] == 2


class TestShardCollector:
    def test_collects_per_shard_lane_metrics(self, topology, values):
        result = run_protocol(Wildfire(), topology, values, "count",
                              seed=SEED, lane="sharded", shards=2)
        assert "sharded" in result.extra
        snapshot = collect_shard_metrics(result).snapshot()
        assert snapshot["shard.shards"] == 2
        for shard in (0, 1):
            assert snapshot[f"shard.{shard}.epochs"] >= 1
            assert f"shard.{shard}.barrier_wait_s" in snapshot

    def test_non_sharded_results_fold_nothing(self, topology, values):
        result = run_protocol(Wildfire(), topology, values, "count",
                              seed=SEED)
        assert collect_shard_metrics(result).snapshot() == {}


class TestServiceCollector:
    def test_final_snapshot_covers_every_tenant(self, topology, values):
        service = QueryService(topology, values, seed=SEED)
        qids = [service.submit("wildfire", "count"),
                service.submit("spanning-tree", "sum", at=1.0),
                service.submit("dag2", "min", at=2.0)]
        service.run()
        snapshot = collect_service_metrics(service)
        engine = service.engine
        assert snapshot["service.messages_sent"] == engine.messages_sent
        assert snapshot["service.peak_active_sessions"] >= 2
        assert snapshot["service.retired_order"] == sorted(qids)
        tenants = snapshot["service.tenants"]
        assert sorted(tenants) == [str(q) for q in sorted(qids)]
        for row in tenants.values():
            assert row["status"] == "done"
            assert row["queue_depth"] == 0
            assert row["messages_sent"] > 0
            assert row["residency"] > 0
        assert snapshot["service.session_residency"]["count"] == len(qids)

    def test_mid_run_queue_depth_demuxes_per_tenant(self, topology, values):
        service = QueryService(topology, values, seed=SEED)
        first = service.submit("wildfire", "count")
        second = service.submit("spanning-tree", "sum", at=1.0)
        service.run(until=1.5)       # both launched, neither declared
        depths = service.engine.queue_depth_by_session()
        assert depths.get(first, 0) > 0
        assert depths.get(second, 0) > 0
        total = sum(w for _, w in service.engine._queue.iter_pending())
        assert sum(depths.values()) <= total
        service.run()                # horizon-sliced drive still drains


class TestWorkerUtilisation:
    class _Result:
        def __init__(self, elapsed, cached=False):
            self.elapsed = elapsed
            self.cached = cached

    class _Report:
        def __init__(self, results, elapsed, workers):
            self.results = results
            self.elapsed = elapsed
            self.workers = workers

    def test_busy_fraction(self):
        report = self._Report(
            [self._Result(2.0), self._Result(2.0),
             self._Result(1.0, cached=True)],
            elapsed=4.0, workers=2)
        assert worker_utilisation(report) == pytest.approx(0.5)

    def test_degenerate_reports_are_zero(self):
        assert worker_utilisation(
            self._Report([], elapsed=0.0, workers=4)) == 0.0

    def test_real_run_report_exposes_property(self):
        from repro.orchestration.executor import run_spec
        from repro.orchestration.spec import ExperimentSpec

        spec = ExperimentSpec.create(
            name="util-smoke", runner="validity-point",
            axes={"protocol": ["wildfire"], "topology": ["random"],
                  "size": [30], "aggregate": ["count"]},
            num_trials=2, base_seed=SEED)
        report = run_spec(spec)
        assert 0.0 <= report.worker_utilisation <= 1.0
