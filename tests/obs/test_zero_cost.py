"""The zero-cost-when-disabled contract, asserted two ways.

Telemetry is compiled into every engine seam, so the hard promise the
subsystem makes is that *disabled* telemetry is indistinguishable from
telemetry never having been built:

* a seeded 1k-host run with tracing disabled performs **zero**
  allocations inside the obs modules (tracemalloc, filtered to the
  ``repro/obs`` tree -- the one ``if tracer is not None`` pointer check
  per event allocates nothing);
* golden protocol-matrix cells replay byte-identical with a live
  ``RingTracer`` bound as the process default, because tracers observe
  without touching RNG streams, event ordering, or accounting.
"""

import json
import tracemalloc

import pytest

from repro.obs.trace import RingTracer, tracing
from repro.protocols.base import run_protocol
from repro.protocols.wildfire import Wildfire
from repro.sketches.fm import sampling_mode
from repro.topology.gnutella import gnutella_like_topology
from repro.workloads.values import uniform_values

from tests.golden import regen_snapshots as regen
from tests.golden.test_seeded_equivalence import (
    assert_bit_identical,
    load_snapshot,
)


def test_disabled_telemetry_allocates_nothing_in_obs(tmp_path):
    """Seeded 1k-host run, tracing disabled: no per-message allocations
    attributable to the obs package."""
    topology = gnutella_like_topology(1000, seed=5)
    values = uniform_values(topology.num_hosts, low=1, high=9, seed=5)
    # Warm-up run outside the tracemalloc window pays one-time costs
    # (imports, code objects, caches) so the measured window sees only
    # steady-state per-run allocations.
    run_protocol(Wildfire(), topology, values, "count", seed=5)

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    result = run_protocol(Wildfire(), topology, values, "count", seed=5)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    assert result.costs.messages_sent > 10_000    # the run was real

    obs_filter = tracemalloc.Filter(True, "*repro/obs/*")
    obs_diff = [
        stat for stat in
        after.filter_traces([obs_filter]).compare_to(
            before.filter_traces([obs_filter]), "lineno")
        if stat.size_diff > 0 or stat.count_diff > 0
    ]
    assert obs_diff == [], (
        "disabled telemetry allocated inside repro/obs: "
        + "; ".join(str(stat) for stat in obs_diff))


@pytest.mark.parametrize("case_index", [0, 17, 35])
def test_golden_cells_byte_identical_with_tracer_bound(case_index):
    """Replaying golden matrix cells with a live default RingTracer must
    reproduce the committed snapshots byte for byte."""
    stored = load_snapshot("protocol_matrix", "fast")
    case = regen.matrix_cases()[case_index]
    tracer = RingTracer()
    with sampling_mode("fast"), tracing(tracer):
        live = regen.canonical(regen.run_matrix_case(case))
    assert_bit_identical(
        stored[case_index], live,
        f"matrix cell {case} replayed with a bound RingTracer")
    # The tracer really was live for the run.
    assert tracer.counts.get("send", 0) > 0
    assert tracer.counts["send"] == stored[case_index]["costs"][
        "messages_sent"]


def test_golden_cell_json_bytes_match_disabled_run():
    """Strongest form: the serialised JSON bytes of a traced replay equal
    those of a replay with telemetry disabled."""
    case = regen.matrix_cases()[4]
    with sampling_mode("fast"):
        disabled = regen.canonical(regen.run_matrix_case(case))
        with tracing(RingTracer()):
            traced = regen.canonical(regen.run_matrix_case(case))
    assert json.dumps(traced, sort_keys=True).encode() == \
        json.dumps(disabled, sort_keys=True).encode()
