"""CLI integration tests for the observability flags.

Drives ``repro`` through :func:`main` (no subprocesses) and checks the
artifacts each flag promises: a ``pstats``-loadable profile dump, a
Perfetto-loadable Chrome trace / JSON Lines trace, a metrics snapshot
with per-tenant rows, and logging verbosity switching.
"""

import json
import logging
import pstats

import pytest

from repro.orchestration.cli import main


@pytest.fixture(autouse=True)
def _reset_cli_logging():
    """The CLI configures the process-wide 'repro' logger; restore the
    handler-free default after each test so verbosity cannot leak."""
    yield
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)


class TestBenchArtifacts:
    def test_profile_out_dump_loads_with_pstats(self, tmp_path, capsys):
        path = tmp_path / "bench.pstats"
        assert main(["bench", "--hosts", "300",
                     "--profile-out", str(path)]) == 0
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0
        with open(str(path) + ".json") as handle:
            sidecar = json.load(handle)
        assert sidecar["top_functions"]
        # The benchmark table still prints on stdout.
        assert "Kernel scale benchmark" in capsys.readouterr().out

    def test_profile_out_refuses_trajectory_json(self, tmp_path, capsys):
        code = main(["bench", "--hosts", "300",
                     "--profile-out", str(tmp_path / "p.pstats"),
                     "--json", str(tmp_path / "traj.json")])
        assert code == 2
        assert "--profile" in capsys.readouterr().err

    def test_trace_out_chrome_json(self, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["bench", "--hosts", "300",
                     "--trace-out", str(path)]) == 0
        with open(path) as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        assert events
        # Benchmark phases ride along as complete spans.
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"generate_topology", "simulate"} <= names
        counts = payload["metadata"]["counts"]
        assert counts["send"] == counts["deliver"] > 300

    def test_trace_out_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(["bench", "--hosts", "300",
                     "--trace-out", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        assert all(json.loads(line)["type"] for line in lines[1:])


class TestServeArtifacts:
    def _serve(self, tmp_path, *extra):
        metrics = tmp_path / "metrics.json"
        args = ["serve", "--hosts", "120", "--qps", "0.5",
                "--duration", "8", "--max-queries", "4", "--rows", "0",
                "--metrics-out", str(metrics)]
        args.extend(extra)
        assert main(args) == 0
        with open(metrics) as handle:
            return json.load(handle)

    def test_metrics_out_reports_per_tenant_rows(self, tmp_path):
        snapshot = self._serve(tmp_path)
        assert snapshot["service.messages_sent"] > 0
        assert snapshot["service.retired_order"]
        tenants = snapshot["service.tenants"]
        assert tenants
        for row in tenants.values():
            assert {"status", "protocol", "queue_depth", "late_messages",
                    "messages_sent", "residency"} <= set(row)
        assert "service.queue.pending" in snapshot

    def test_trace_out_demuxes_sessions_by_query_id(self, tmp_path):
        trace = tmp_path / "serve.json"
        self._serve(tmp_path, "--trace-out", str(trace))
        with open(trace) as handle:
            events = json.load(handle)["traceEvents"]
        session_ids = {e["id"] for e in events if e["cat"] == "session"}
        assert len(session_ids) >= 2        # several tenants in one trace
        assert any(e["ph"] == "b" for e in events)   # async span begins
        assert any(e["ph"] == "e" for e in events)   # ... and ends


class TestLoggingFlags:
    def test_verbose_enables_info_progress(self, tmp_path, capsys):
        assert main(["-v", "bench", "--hosts", "200"]) == 0
        captured = capsys.readouterr()
        assert "hosts:" in captured.err          # progress line on stderr
        assert "Kernel scale benchmark" in captured.out

    def test_quiet_suppresses_progress(self, capsys):
        assert main(["--quiet", "bench", "--hosts", "200"]) == 0
        captured = capsys.readouterr()
        assert "hosts:" not in captured.err
        assert "Kernel scale benchmark" in captured.out

    def test_default_level_is_info(self, capsys):
        assert main(["bench", "--hosts", "200"]) == 0
        captured = capsys.readouterr()
        assert "hosts:" in captured.err


class TestDelaySweepProvenance:
    def test_provenance_flag_adds_columns(self, capsys):
        assert main(["--quiet", "delay-sweep", "--size", "40",
                     "--delays", "fixed", "-t", "1", "--provenance"]) == 0
        out = capsys.readouterr().out
        assert "lost_alive_mean" in out
        assert "lost_churn_mean" in out

    def test_without_flag_columns_absent(self, capsys):
        assert main(["--quiet", "delay-sweep", "--size", "40",
                     "--delays", "fixed", "-t", "1"]) == 0
        assert "lost_alive_mean" not in capsys.readouterr().out


class TestDistributedTraceArtifacts:
    def test_sharded_trace_out_merges_per_shard_tracks(self, tmp_path):
        trace = tmp_path / "shards.json"
        assert main(["bench", "--hosts", "400", "--topology", "random",
                     "--lane", "sharded", "--shards", "2",
                     "--trace-out", str(trace)]) == 0
        with open(trace) as handle:
            events = json.load(handle)["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"shard 0", "shard 1",
                "epoch barriers (wall clock)"} <= names
        cats = {e.get("cat") for e in events if e["ph"] == "X"}
        assert {"barrier", "epoch"} <= cats

    def test_gated_fallback_logs_warning(self, tmp_path, capsys):
        # A sharded run gated off (variable delay) still completes on
        # the spec loop, but the fallback is surfaced loudly -- even
        # under --quiet -- and the printed table shows the reason.
        assert main(["--quiet", "bench", "--hosts", "200",
                     "--topology", "random", "--lane", "sharded",
                     "--shards", "2", "--delay", "uniform:0.2,0.9"]) == 0
        captured = capsys.readouterr()
        assert "fell back to the python spec loop" in captured.err
        assert "variable delay model" in captured.err
        assert "fallback_reason" in captured.out

    def test_engaged_run_prints_no_fallback_column(self, capsys):
        assert main(["--quiet", "bench", "--hosts", "200",
                     "--topology", "random", "--lane", "sharded",
                     "--shards", "2"]) == 0
        captured = capsys.readouterr()
        assert "fell back" not in captured.err
        assert "fallback_reason" not in captured.out
        assert "lane_used" in captured.out


class TestMetricsStreaming:
    def test_bench_metrics_out_streams_progress_jsonl(self, tmp_path):
        stream = tmp_path / "live.jsonl"
        assert main(["bench", "--hosts", "400", "--topology", "random",
                     "--lane", "sharded", "--shards", "2",
                     "--metrics-out", str(stream),
                     "--metrics-interval", "0.05"]) == 0
        rows = [json.loads(line)
                for line in stream.read_text().splitlines()]
        assert rows[0]["type"] == "meta"
        assert rows[0]["lane"] == "sharded"
        assert rows[-1]["type"] == "final"
        final = rows[-1]
        assert final["progress"]["shards"] == 2
        assert all(epochs >= 1 for epochs in final["progress"]["epochs"])
        seqs = [row["seq"] for row in rows[1:]]
        assert seqs == sorted(seqs)

    def test_bench_metrics_interval_requires_out(self, capsys):
        assert main(["bench", "--hosts", "200",
                     "--metrics-interval", "1"]) == 2
        assert "--metrics-out" in capsys.readouterr().err

    def test_serve_metrics_interval_streams_snapshots(self, tmp_path):
        stream = tmp_path / "serve.jsonl"
        assert main(["serve", "--hosts", "120", "--qps", "0.5",
                     "--duration", "8", "--max-queries", "4",
                     "--rows", "0", "--metrics-out", str(stream),
                     "--metrics-interval", "2"]) == 0
        rows = [json.loads(line)
                for line in stream.read_text().splitlines()]
        assert rows[0]["type"] == "meta"
        samples = [row for row in rows if row["type"] == "sample"]
        assert samples
        assert all("service.sim_time" in row for row in samples)
        assert rows[-1]["type"] == "final"
        assert rows[-1]["service.messages_sent"] > 0

    def test_serve_streaming_keeps_digest_identical(self, tmp_path,
                                                    capsys):
        def _digest(*extra):
            args = ["--quiet", "serve", "--hosts", "120", "--qps", "0.5",
                    "--duration", "8", "--max-queries", "4", "--rows", "0"]
            assert main(list(args) + list(extra)) == 0
            out = capsys.readouterr().out
            return out[out.index("determinism_digest"):].split()[1]

        streamed = _digest("--metrics-out", str(tmp_path / "s.jsonl"),
                           "--metrics-interval", "1")
        assert streamed == _digest()


class TestObsReport:
    def _bench_artifact(self, tmp_path):
        path = tmp_path / "bench.json"
        assert main(["--quiet", "bench", "--hosts", "400",
                     "--topology", "random", "--lane", "sharded",
                     "--shards", "2", "--json", str(path)]) == 0
        return path

    def test_report_prints_straggler_table(self, tmp_path, capsys):
        path = self._bench_artifact(tmp_path)
        capsys.readouterr()
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Epoch/barrier timeline (2 shards" in out
        assert "straggler" in out
        assert "barrier_frac" in out
        assert "Per-shard totals" in out
        assert "worst epoch:" in out

    def test_report_rejects_artifact_without_timeline(self, tmp_path,
                                                      capsys):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({"rows": [{"hosts": 10}]}))
        assert main(["obs", "report", str(path)]) == 2
        assert "no sharded epoch timeline" in capsys.readouterr().err

    def test_report_summarises_metrics_stream(self, tmp_path, capsys):
        stream = tmp_path / "live.jsonl"
        assert main(["--quiet", "serve", "--hosts", "120", "--qps", "0.5",
                     "--duration", "8", "--max-queries", "4",
                     "--rows", "0", "--metrics-out", str(stream),
                     "--metrics-interval", "2"]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "stream: " in out
        assert "Live metrics samples" in out

    def test_report_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestObsReportInterruptedStreams:
    """``obs report`` on streams from interrupted runs: partial tables,
    exit 0.  Only real mid-stream corruption stays exit 2."""

    META = {"type": "meta", "stream": "metrics", "hosts": 120}

    def _write(self, tmp_path, lines):
        path = tmp_path / "live.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def _sample(self, seq):
        return json.dumps({"type": "sample", "seq": seq,
                           "elapsed_s": 0.5 * seq,
                           "service.queries": seq + 1})

    def test_no_final_frame_prints_partial_tables(self, tmp_path, capsys):
        path = self._write(tmp_path, [json.dumps(self.META),
                                      self._sample(0), self._sample(1)])
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stream has no final frame (interrupted run)" in out
        assert "Live metrics samples" in out

    def test_torn_last_line_is_dropped_with_a_warning(self, tmp_path,
                                                      capsys):
        path = self._write(tmp_path, [json.dumps(self.META),
                                      self._sample(0),
                                      '{"type": "sample", "seq": 1, "tr'])
        assert main(["obs", "report", str(path)]) == 0
        captured = capsys.readouterr()
        assert "dropped torn last line (interrupted run)" in captured.err
        assert "Live metrics samples" in captured.out

    def test_meta_only_stream_reports_the_header(self, tmp_path, capsys):
        path = self._write(tmp_path, [json.dumps(self.META)])
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stream: " in out
        assert "hosts=120" in out
        assert "interrupted before its first sample" in out

    def test_empty_stream_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "live.jsonl"
        path.write_text("")
        assert main(["obs", "report", str(path)]) == 2
        assert "holds no metrics samples" in capsys.readouterr().err

    def test_mid_stream_corruption_is_an_error(self, tmp_path, capsys):
        path = self._write(tmp_path, [json.dumps(self.META),
                                      "{not json}",
                                      self._sample(0)])
        assert main(["obs", "report", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
