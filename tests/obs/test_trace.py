"""Tests for the structured trace layer.

The two contracts under test:

* a tracer *observes* -- a traced run is bit-identical (declared value,
  termination, full cost fingerprint) to an untraced run at the same
  seed, because the hooks never touch RNG streams, event ordering, or
  accounting;
* the ring is bounded and the per-kind counts stay exact under
  sampling, so a 100k-host trace cannot blow the export budget while
  still reporting true traffic totals.
"""

import json

import pytest

from repro.obs.trace import (
    DEFAULT_SAMPLING,
    RingTracer,
    Tracer,
    default_tracer,
    set_default_tracer,
    tracing,
)
from repro.protocols.base import run_protocol
from repro.protocols.wildfire import Wildfire
from repro.simulation.churn import ChurnSchedule
from repro.topology.random_graph import random_topology
from repro.workloads.values import uniform_values

SEED = 21


@pytest.fixture
def topology():
    return random_topology(48, avg_degree=4, seed=SEED)


@pytest.fixture
def values(topology):
    return uniform_values(topology.num_hosts, low=1, high=9, seed=SEED)


def _fingerprint(result):
    costs = result.costs
    return (
        result.value,
        result.finished_at,
        result.termination_time,
        costs.messages_sent,
        costs.wireless_transmissions,
        costs.dropped_messages,
        costs.max_chain_depth,
        sorted(costs.messages_processed.items()),
        sorted(costs.messages_by_time.items()),
    )


class TestObservationOnly:
    def test_traced_run_bit_identical_to_untraced(self, topology, values):
        churn = ChurnSchedule(failures=[(1.5, 7), (2.5, 12)])
        untraced = run_protocol(Wildfire(), topology, values, "count",
                                churn=churn, seed=SEED)
        tracer = RingTracer()
        traced = run_protocol(Wildfire(), topology, values, "count",
                              churn=churn, seed=SEED, tracer=tracer)
        assert _fingerprint(traced) == _fingerprint(untraced)
        # ... and the tracer actually saw the run.
        assert tracer.counts["send"] == traced.costs.messages_sent
        assert tracer.counts["fail"] == 2

    def test_base_tracer_exercises_call_sites_without_recording(
            self, topology, values):
        plain = run_protocol(Wildfire(), topology, values, "count",
                             seed=SEED)
        noop = run_protocol(Wildfire(), topology, values, "count",
                            seed=SEED, tracer=Tracer())
        assert _fingerprint(noop) == _fingerprint(plain)


class TestRing:
    def test_exact_counts_survive_sampling(self):
        tracer = RingTracer(sampling={"send": 10})
        for i in range(95):
            tracer.send(float(i), i, i + 1, "Aggregate")
        assert tracer.counts["send"] == 95
        # Every 10th admitted: records 0, 10, ..., 90.
        assert len(tracer) == 10

    def test_multicast_weight_bumps_count_by_fanout(self):
        tracer = RingTracer(sampling={})
        tracer.send(0.0, 3, -1, "Broadcast", count=17)
        assert tracer.counts["send"] == 17
        assert len(tracer) == 1

    def test_ring_keeps_newest_records(self):
        tracer = RingTracer(capacity=8, sampling={})
        for i in range(20):
            tracer.timer(float(i), i, "deadline")
        records = tracer.records()
        assert len(records) == 8
        assert [r["time"] for r in records] == [float(i) for i in range(12, 20)]
        assert tracer.counts["timer"] == 20

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)
        with pytest.raises(ValueError):
            RingTracer(sampling={"send": 0})

    def test_summary_reports_counts_and_occupancy(self):
        tracer = RingTracer(capacity=100, sampling={"send": 2})
        for i in range(6):
            tracer.send(float(i), 0, 1, "Aggregate")
        summary = tracer.summary()
        assert summary["counts"] == {"send": 6}
        assert summary["recorded"] == 3
        assert summary["capacity"] == 100
        assert summary["sampling"] == {"send": 2}


class TestExporters:
    @pytest.fixture
    def populated(self, topology, values):
        tracer = RingTracer(sampling=DEFAULT_SAMPLING)
        run_protocol(Wildfire(), topology, values, "count", seed=SEED,
                     tracer=tracer)
        tracer.phase("simulate", 0.0, 1.25, detail=topology.num_hosts)
        tracer.session(0.0, 1, "launch", "wildfire")
        tracer.session(8.0, 1, "declare", 42.0)
        return tracer

    def test_jsonl_header_plus_one_object_per_record(self, populated,
                                                     tmp_path):
        path = tmp_path / "trace.jsonl"
        written = populated.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == written + 1
        header = json.loads(lines[0])
        assert header["type"] == "meta"
        assert header["counts"] == populated.summary()["counts"]
        kinds = {json.loads(line)["type"] for line in lines[1:]}
        assert {"send", "deliver", "phase", "session"} <= kinds

    def test_chrome_export_is_perfetto_shaped(self, populated, tmp_path):
        path = tmp_path / "trace.json"
        written = populated.export_chrome(str(path))
        with open(path) as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        assert len(events) == written == len(populated)
        phases = {e["ph"] for e in events}
        assert "i" in phases            # thread instants
        assert "X" in phases            # wall-clock phase span
        assert {"b", "e"} <= phases     # session async span
        span = next(e for e in events if e["ph"] == "X")
        # One simulation second maps to one trace microsecond.
        assert span["dur"] == pytest.approx(1.25e6)
        assert payload["metadata"]["counts"] == populated.summary()["counts"]


class TestDefaultBinding:
    def test_default_is_disabled(self):
        assert default_tracer() is None

    def test_tracing_binds_and_restores(self):
        tracer = RingTracer()
        with tracing(tracer) as bound:
            assert bound is tracer
            assert default_tracer() is tracer
        assert default_tracer() is None

    def test_engines_resolve_default_once(self, topology, values):
        """A run built under ``tracing(...)`` uses the bound tracer even
        though no ``tracer=`` argument was passed."""
        tracer = RingTracer()
        with tracing(tracer):
            result = run_protocol(Wildfire(), topology, values, "count",
                                  seed=SEED)
        assert tracer.counts["send"] == result.costs.messages_sent

    def test_set_default_rejects_non_tracers(self):
        with pytest.raises(TypeError):
            set_default_tracer(object())
        previous = set_default_tracer(None)
        assert previous is None


class TestExporterEdgeCases:
    def test_empty_ring_exports_header_only_jsonl(self, tmp_path):
        tracer = RingTracer()
        path = tmp_path / "empty.jsonl"
        assert tracer.export_jsonl(str(path)) == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["type"] == "meta"
        assert header["counts"] == {}

    def test_empty_ring_exports_loadable_chrome_json(self, tmp_path):
        tracer = RingTracer()
        path = tmp_path / "empty.json"
        assert tracer.export_chrome(str(path)) == 0
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"] == []
        assert payload["metadata"]["counts"] == {}

    def test_heavily_sampled_ring_keeps_exact_counts(self, tmp_path):
        # Sampling thins the *ring*, never the counters: with a step
        # larger than the event volume almost nothing is resident, yet
        # the exported metadata still reports every hook invocation.
        step = 10 ** 6
        tracer = RingTracer(sampling={"send": step, "deliver": step,
                                      "timer": step, "drop": step})
        for i in range(500):
            tracer.send(float(i), 0, 1, "Aggregate")
            tracer.deliver(float(i), 0, 1, "Aggregate", 1)
            tracer.timer(float(i), 1, "flush")
            tracer.drop(float(i), 2)
        assert dict(tracer.counts) == {
            "send": 500, "deliver": 500, "timer": 500, "drop": 500}
        assert len(tracer) == 4  # the first event of each kind
        path = tmp_path / "sampled.jsonl"
        written = tracer.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert written == 4
        assert len(lines) == 5
        header = json.loads(lines[0])
        assert header["counts"] == dict(tracer.counts)
        chrome = tmp_path / "sampled.json"
        tracer.export_chrome(str(chrome))
        with open(chrome) as handle:
            payload = json.load(handle)
        assert payload["metadata"]["counts"] == dict(tracer.counts)


class TestProcessMerge:
    def _child(self, shard, base):
        # An empty sampling map means every kind records at step 1, so
        # the expected resident counts are exact.
        child = RingTracer(capacity=64, sampling={})
        for i in range(4):
            t = base + float(i)
            child.send(t, shard, -1, "Aggregate", count=3)
            child.deliver(t + 0.5, shard, shard + 1, "Aggregate", 1, t)
        child.timer(base + 4.0, shard, "flush")
        return child

    def test_ingest_folds_counts_and_tracks(self):
        parent = RingTracer()
        for shard in range(2):
            child = self._child(shard, base=float(shard))
            parent.ingest_process(f"shard {shard}", child.raw_records(),
                                  counts=dict(child.counts))
        # Multicast sends count their fan-out (width 3 x 4 per child).
        assert dict(parent.counts) == {"send": 24, "deliver": 8, "timer": 2}
        assert [p["label"] for p in parent.processes] == [
            "shard 0", "shard 1"]
        summary = parent.summary()
        assert [p["recorded"] for p in summary["processes"]] == [9, 9]

    def test_merged_chrome_round_trips_with_monotonic_tracks(
            self, tmp_path):
        parent = RingTracer()
        spans = [("barrier e1", 0.001, 0.002, {"epoch": 1}),
                 ("epoch e1", 0.003, 0.004, {"epoch": 1})]
        for shard in range(3):
            child = self._child(shard, base=float(shard))
            parent.ingest_process(f"shard {shard}", child.raw_records(),
                                  counts=dict(child.counts),
                                  spans=spans)
        path = tmp_path / "merged.json"
        written = parent.export_chrome(str(path))
        with open(path) as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        assert len(events) == written
        names = {e["pid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert set(names.values()) == {
            "shard 0", "shard 1", "shard 2",
            "epoch barriers (wall clock)"}
        # Per-(pid, tid) track timestamps must be monotone or Perfetto
        # rejects the trace.
        tracks = {}
        for event in events:
            if event["ph"] == "M":
                continue
            tracks.setdefault((event["pid"], event.get("tid")),
                              []).append(event["ts"])
        assert tracks, "merged trace renders real events"
        for stamps in tracks.values():
            assert stamps == sorted(stamps)
        span_events = [e for e in events if e["ph"] == "X"
                       and e["cat"] in ("barrier", "epoch")]
        assert len(span_events) == 3 * len(spans)

    def test_merged_jsonl_labels_every_process_record(self, tmp_path):
        parent = RingTracer()
        parent.send(0.0, 0, 1, "Aggregate")  # parent's own ring
        child = self._child(0, base=0.0)
        parent.ingest_process("shard 0", child.raw_records(),
                              counts=dict(child.counts))
        path = tmp_path / "merged.jsonl"
        written = parent.export_jsonl(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["type"] == "meta"
        body = rows[1:]
        assert len(body) == written
        tracked = [row for row in body if "track" in row]
        assert len(tracked) == 9
        assert {row["track"] for row in tracked} == {"shard 0"}
        untracked = [row for row in body if "track" not in row]
        assert len(untracked) == 1  # the parent's own send
