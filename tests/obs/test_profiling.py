"""Tests for the profiling hooks: capture windows and phase timing."""

import json
import pstats

import pytest

from repro.obs.profiling import PhaseTimer, ProfileCapture
from repro.obs.trace import RingTracer


def _busy_work(n: int = 40_000) -> int:
    total = 0
    for i in range(n):
        total += i & 15
    return total


class TestProfileCapture:
    def test_dump_loads_with_pstats(self, tmp_path):
        capture = ProfileCapture()
        with capture:
            _busy_work()
        path = str(tmp_path / "profile.pstats")
        assert capture.dump(path) == path
        stats = pstats.Stats(path)
        assert stats.total_calls > 0
        with open(path + ".json") as handle:
            sidecar = json.load(handle)
        assert sidecar["elapsed_seconds"] == pytest.approx(
            capture.elapsed)
        assert sidecar["top_functions"]
        assert all({"function", "calls", "cumulative_seconds"}
                   <= set(row) for row in sidecar["top_functions"])

    def test_tracemalloc_peak_is_opt_in(self, tmp_path):
        plain = ProfileCapture()
        with plain:
            _busy_work(1000)
        assert plain.peak_traced_bytes is None

        traced = ProfileCapture(trace_malloc=True)
        with traced:
            blob = [bytearray(4096) for _ in range(32)]
        assert traced.peak_traced_bytes is not None
        assert traced.peak_traced_bytes >= 32 * 4096
        assert blob  # keep alive through the window

    def test_top_functions_ranked_by_cumulative_time(self):
        capture = ProfileCapture()
        with capture:
            _busy_work()
        rows = capture.top_functions(5)
        assert len(rows) <= 5
        cumulative = [row["cumulative_seconds"] for row in rows]
        assert cumulative == sorted(cumulative, reverse=True)


class TestPhaseTimer:
    def test_sections_accumulate(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.section("work"):
                _busy_work(5000)
        with timer.section("other"):
            pass
        assert timer.seconds("work") > 0
        assert timer.seconds("missing") == 0.0
        as_dict = timer.as_dict()
        assert set(as_dict) == {"work", "other"}
        assert as_dict["work"] == pytest.approx(timer.seconds("work"))

    def test_sections_emit_phase_trace_records(self):
        tracer = RingTracer(sampling={})
        timer = PhaseTimer(tracer=tracer)
        with timer.section("simulate", detail=1234):
            _busy_work(1000)
        assert tracer.counts.get("phase") == 1
        record = tracer.records()[0]
        assert record["type"] == "phase"
        assert record["name"] == "simulate"
        assert record["detail"] == 1234
        assert record["duration"] == pytest.approx(
            timer.seconds("simulate"))

    def test_section_recorded_even_when_body_raises(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.section("failing"):
                raise RuntimeError("boom")
        assert timer.seconds("failing") >= 0.0
        assert "failing" in timer.as_dict()
