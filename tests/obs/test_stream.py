"""Unit tests for live metrics streaming primitives.

The writer's JSON Lines framing, the sampler's error propagation and
final-sample semantics, and the fork-shared progress board; the CLI
integration (``--metrics-out`` / ``--metrics-interval``) lives in
``tests/obs/test_cli_obs.py``.
"""

import json
import time

import pytest

from repro.obs.stream import (
    MetricsStreamWriter,
    PeriodicSampler,
    ShardProgressBoard,
    current_rss_mb,
    default_progress_board,
    progress_board,
    set_progress_board,
)


def _rows(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestMetricsStreamWriter:
    def test_meta_header_then_framed_samples(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with MetricsStreamWriter(str(path), meta={"hosts": 10}) as writer:
            writer.sample({"a": 1})
            writer.sample({"a": 2})
            writer.final({"a": 3})
            assert writer.samples_written == 3
        rows = _rows(path)
        assert rows[0] == {"type": "meta", "stream": "metrics",
                           "hosts": 10}
        assert [row["type"] for row in rows[1:]] == [
            "sample", "sample", "final"]
        assert [row["seq"] for row in rows[1:]] == [0, 1, 2]
        assert all(row["elapsed_s"] >= 0 for row in rows[1:])

    def test_reserved_keys_win_over_payload(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with MetricsStreamWriter(str(path)) as writer:
            writer.sample({"type": "bogus", "seq": 999, "value": 7})
        row = _rows(path)[1]
        assert row["type"] == "sample"
        assert row["seq"] == 0
        assert row["value"] == 7

    def test_lines_flush_while_stream_is_open(self, tmp_path):
        path = tmp_path / "m.jsonl"
        writer = MetricsStreamWriter(str(path))
        writer.sample({"live": True})
        # Readable before close: the whole point of the stream.
        assert len(_rows(path)) == 2
        writer.close()
        writer.close()  # idempotent


class TestPeriodicSampler:
    def test_stop_fires_one_final_sample(self):
        calls = []
        sampler = PeriodicSampler(60.0, lambda: calls.append(1))
        sampler.start()
        sampler.stop()
        assert len(calls) == 1  # interval never elapsed; final only

    def test_periodic_callbacks_fire(self):
        calls = []
        with PeriodicSampler(0.01, lambda: calls.append(1)):
            time.sleep(0.08)
        assert len(calls) >= 2

    def test_callback_errors_reraise_from_stop(self):
        def boom():
            raise RuntimeError("sampler died")

        sampler = PeriodicSampler(0.01, boom).start()
        time.sleep(0.05)
        with pytest.raises(RuntimeError, match="sampler died"):
            sampler.stop()

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            PeriodicSampler(0.0, lambda: None)

    def test_double_start_is_an_error(self):
        sampler = PeriodicSampler(60.0, lambda: None).start()
        with pytest.raises(RuntimeError):
            sampler.start()
        sampler.stop(final_sample=False)


class TestShardProgressBoard:
    def test_snapshot_reads_cells(self):
        board = ShardProgressBoard(3)
        board.cells[2] = 5.0   # shard 1: 5 epochs
        board.cells[3] = 5.25  # ... at simulated time 5.25
        snap = board.snapshot()
        assert snap == {"shards": 3, "epochs": [0, 5, 0],
                        "sim_time": [0.0, 5.25, 0.0]}

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError):
            ShardProgressBoard(0)

    def test_process_binding_mirrors_default_tracer(self):
        assert default_progress_board() is None
        board = ShardProgressBoard(2)
        with progress_board(board) as bound:
            assert bound is board
            assert default_progress_board() is board
        assert default_progress_board() is None
        with pytest.raises(TypeError):
            set_progress_board(object())


def test_current_rss_mb_reports_positive_on_linux():
    rss = current_rss_mb()
    assert rss is None or rss > 0
