"""Idempotency of the CLI logging configuration.

``configure`` must be safe to call any number of times in one process
(CLI re-entry, embedding apps, tests): exactly one managed handler on
the ``repro`` logger afterwards, no duplicated output lines, and the
replaced handler closed so its resources are released.
"""

import io
import logging

import pytest

from repro.obs.logconfig import ROOT_LOGGER_NAME, configure, get_logger


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    yield
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


def _cli_handlers():
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    return [h for h in logger.handlers
            if getattr(h, "_repro_cli", False)]


class TestIdempotency:
    def test_repeated_configure_keeps_one_handler(self):
        for _ in range(5):
            configure(0)
        assert len(_cli_handlers()) == 1

    def test_no_duplicate_lines_after_reconfigure(self):
        stream = io.StringIO()
        configure(0, stream=stream)
        configure(0, stream=stream)
        get_logger().info("once")
        assert stream.getvalue().count("once") == 1

    def test_replaced_handler_is_closed(self):
        configure(0, stream=io.StringIO())
        old = _cli_handlers()[0]
        closed = []
        original_close = old.close
        old.close = lambda: (closed.append(True), original_close())
        configure(0, stream=io.StringIO())
        assert closed == [True]
        assert old not in _cli_handlers()

    def test_foreign_handlers_survive_reconfigure(self):
        logger = logging.getLogger(ROOT_LOGGER_NAME)
        foreign = logging.NullHandler()
        logger.addHandler(foreign)
        configure(0)
        configure(0)
        assert foreign in logger.handlers
        assert len(_cli_handlers()) == 1


class TestLevels:
    @pytest.mark.parametrize("verbosity,level", [
        (-1, logging.WARNING), (0, logging.INFO), (1, logging.DEBUG),
        (2, logging.DEBUG),
    ])
    def test_verbosity_maps_to_level(self, verbosity, level):
        assert configure(verbosity).level == level

    def test_propagation_is_disabled(self):
        assert configure(0).propagate is False
