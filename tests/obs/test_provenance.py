"""Tests for per-estimate provenance (the contribution DAG, reduced).

The reverse temporal-reachability pass is checked against the paper's
semantics in the settings where its answer is exact:

* static flooding run: every host contributes, nothing is lost;
* churned flooding run: missing hosts are split into churn-excused
  (``lost_to_churn``) and alive-but-missing (``lost_alive``);
* a tracer observes only -- the result beside the provenance is
  bit-identical to an untraced run.
"""

import pytest

from repro.obs.provenance import (
    EstimateProvenance,
    ProvenanceTracer,
    run_protocol_with_provenance,
)
from repro.protocols.base import run_protocol
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.simulation.churn import ChurnSchedule
from repro.topology.random_graph import random_topology
from repro.workloads.values import uniform_values

SEED = 29


@pytest.fixture
def topology():
    return random_topology(80, avg_degree=4, seed=SEED)


@pytest.fixture
def values(topology):
    return uniform_values(topology.num_hosts, low=1, high=9, seed=SEED)


class TestStaticRuns:
    def test_convergecast_absorbs_every_host(self, topology, values):
        # The spanning tree folds every subtree response exactly once, so
        # on a static network the contribution set is the whole network.
        result, provenance = run_protocol_with_provenance(
            SpanningTree(), topology, values, "count", seed=SEED)
        assert result.value == float(topology.num_hosts)
        assert provenance.num_hosts == topology.num_hosts
        assert len(provenance.contributors) == topology.num_hosts
        assert provenance.lost == frozenset()
        assert provenance.lost_alive == frozenset()
        assert provenance.lost_to_churn == frozenset()

    def test_flooding_subsumption_never_drops_the_winner(self, topology,
                                                         values):
        # WILDFIRE re-floods only on state *change*, so for ``min`` most
        # hosts are subsumed (their value was not smaller) and correctly
        # fall out of the may-contribute set -- but the host holding the
        # minimum must always be attributed.
        result, provenance = run_protocol_with_provenance(
            Wildfire(), topology, values, "min", seed=SEED)
        assert result.value == float(min(values))
        holders = {h for h, v in enumerate(values) if v == min(values)}
        # Ties mean any holder's copy may have won; at least one of them
        # must be attributed.
        assert holders & provenance.contributors
        assert result.querying_host in provenance.contributors
        assert len(provenance.contributors) < topology.num_hosts
        # Static network: every missing host is a subsumed survivor.
        assert provenance.lost_to_churn == frozenset()
        assert provenance.lost_alive == provenance.lost

    def test_as_dict_is_json_ready(self, topology, values):
        _, provenance = run_protocol_with_provenance(
            SpanningTree(), topology, values, "count", seed=SEED)
        row = provenance.as_dict()
        assert row["contributors"] == topology.num_hosts
        assert row["lost"] == row["lost_alive"] == row["lost_to_churn"] == 0
        assert row["deliveries"] == provenance.deliveries > 0


class TestChurnedFlood:
    @pytest.fixture
    def churned(self, topology, values):
        churn = ChurnSchedule(failures=[(0.5, 11), (0.5, 23), (1.5, 37)])
        tracer = ProvenanceTracer()
        result = run_protocol(Wildfire(), topology, values, "count",
                              churn=churn, seed=SEED, tracer=tracer)
        return result, tracer.provenance(
            result.querying_host, result.termination_time,
            topology.num_hosts)

    def test_failed_hosts_are_recorded(self, churned):
        _, provenance = churned
        assert provenance.failed == frozenset({11, 23, 37})

    def test_lost_partition_is_exhaustive_and_disjoint(self, churned):
        _, provenance = churned
        assert provenance.lost_to_churn | provenance.lost_alive == \
            provenance.lost
        assert provenance.lost_to_churn & provenance.lost_alive == \
            frozenset()
        assert provenance.lost_to_churn <= provenance.failed

    def test_contributors_and_lost_cover_initial_hosts(self, churned):
        _, provenance = churned
        union = provenance.contributors | provenance.lost
        assert union == frozenset(range(provenance.num_hosts))


class TestObservationOnly:
    def test_result_identical_to_untraced_run(self, topology, values):
        plain = run_protocol(Wildfire(), topology, values, "count",
                             seed=SEED)
        traced, _ = run_protocol_with_provenance(
            Wildfire(), topology, values, "count", seed=SEED)
        assert traced.value == plain.value
        assert traced.finished_at == plain.finished_at
        assert sorted(traced.costs.messages_by_time.items()) == \
            sorted(plain.costs.messages_by_time.items())


class TestExperimentsOptIn:
    def test_badcase_attribution_tells_the_theorem_story(self):
        from repro.experiments.badcase import run_theorem_44_experiment

        base = [r.as_dict() for r in run_theorem_44_experiment(
            cycle_size=20)]
        attributed = run_theorem_44_experiment(cycle_size=20,
                                               provenance=True)
        # Opt-in columns appear only when asked; the pinned columns and
        # declared values are untouched.
        assert all("lost_alive" not in row for row in base)
        for plain, rich in zip(base, attributed):
            row = rich.as_dict()
            assert {key: row[key] for key in plain} == plain
            assert isinstance(rich.provenance, EstimateProvenance)
        wildfire = next(r for r in attributed
                        if r.protocol == "wildfire")
        # The surviving arc of the cycle carries every remaining host's
        # contribution, so WILDFIRE loses nothing it cannot excuse.
        assert wildfire.provenance.lost_alive == frozenset()

    def test_delay_sweep_columns_are_opt_in(self):
        from repro.experiments.delay_sweep import run_delay_sweep

        topology = random_topology(40, avg_degree=4, seed=SEED)
        plain = run_delay_sweep(topology, "count", departures=(0,),
                                delay_specs=("fixed",), num_trials=1,
                                seed=SEED)
        rich = run_delay_sweep(topology, "count", departures=(0,),
                               delay_specs=("fixed",), num_trials=1,
                               seed=SEED, provenance=True)
        for before, after in zip(plain, rich):
            stock = before.as_dict()
            extended = after.as_dict()
            assert "lost_alive_mean" not in stock
            assert {key: extended[key] for key in stock} == stock
            assert "lost_alive_mean" in extended
            assert "lost_churn_mean" in extended
