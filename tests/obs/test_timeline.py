"""Unit tests for the epoch/barrier timeline views.

Synthetic samples with known skews pin the straggler attribution,
tie-breaks, overhead fractions and artifact-walking construction;
integration against a real sharded run lives in
``tests/simulation/test_sharded_lane.py``.
"""

import pytest

from repro.obs.timeline import SAMPLE_FIELDS, ShardTimeline


def _sample(shard, epoch, **overrides):
    base = {
        "shard": shard, "epoch": epoch, "t": float(epoch),
        "wall_start": epoch * 0.01 + shard * 0.001,
        "exchange_s": 0.001, "compute_s": 0.004,
        "barrier_wait_s": 0.0005, "cross_records": 10,
        "queue_depth": 20,
    }
    base.update(overrides)
    assert set(base) == set(SAMPLE_FIELDS)
    return base


@pytest.fixture
def timeline():
    # Epoch 1: shard 1 straggles (0.009 vs 0.004); epoch 2: a tie.
    return ShardTimeline(2, [
        _sample(0, 1),
        _sample(1, 1, compute_s=0.009, barrier_wait_s=0.0),
        _sample(0, 2),
        _sample(1, 2),
    ])


class TestConstruction:
    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError):
            ShardTimeline(0, [])

    def test_sorts_samples_by_epoch_then_shard(self):
        scrambled = ShardTimeline(2, [
            _sample(1, 2), _sample(0, 1), _sample(1, 1), _sample(0, 2)])
        keys = [(s["epoch"], s["shard"]) for s in scrambled.samples]
        assert keys == [(1, 0), (1, 1), (2, 0), (2, 1)]

    def test_from_run_walks_nested_artifacts(self, timeline):
        block = {"shards": 2, "timeline": timeline.samples}
        # A bench trajectory payload: the block sits rows-deep.
        artifact = {"trajectory": [
            {"label": "x", "rows": [{"hosts": 10, "sharded": block}]}]}
        found = ShardTimeline.from_run(artifact)
        assert found is not None
        assert found.shards == 2
        assert len(found.samples) == 4

    def test_from_run_returns_none_without_timeline(self):
        assert ShardTimeline.from_run({"rows": [1, 2]}) is None
        # A block that merely *names* sharded but has the wrong shape.
        assert ShardTimeline.from_run(
            {"sharded": {"shards": 2, "workers": []}}) is None

    def test_from_run_accepts_result_objects(self, timeline):
        class Result:
            extra = {"sharded": {"shards": 2,
                                 "timeline": timeline.samples}}

        assert ShardTimeline.from_run(Result()).epochs() == 2


class TestSkewReport:
    def test_names_the_straggler_and_skew(self, timeline):
        rows = timeline.skew_report()
        assert [row["epoch"] for row in rows] == [1, 2]
        first = rows[0]
        assert first["straggler"] == 1
        assert first["compute_max_s"] == pytest.approx(0.009)
        assert first["skew_s"] == pytest.approx(0.005)
        assert first["cross_records"] == 20

    def test_ties_break_to_the_lower_shard(self, timeline):
        rows = timeline.skew_report()
        tie = rows[1]
        assert tie["straggler"] == 0
        assert tie["skew_s"] == pytest.approx(0.0)

    def test_barrier_frac_is_barrier_over_busy(self, timeline):
        first = timeline.skew_report()[0]
        busy = 0.001 + 0.004 + 0.001 + 0.009
        assert first["barrier_wait_s"] == pytest.approx(0.0005)
        assert first["barrier_frac"] == pytest.approx(
            round(0.0005 / busy, 4))


class TestHealth:
    def test_aggregates_per_shard_totals(self, timeline):
        health = timeline.health()
        assert health["shards"] == 2
        assert health["epochs"] == 2
        assert health["compute_s"][0] == pytest.approx(0.008)
        assert health["compute_s"][1] == pytest.approx(0.013)
        assert health["straggler_epochs"] == [1, 1]
        assert health["worst_epoch"]["epoch"] == 1

    def test_empty_timeline_health_is_all_zero(self):
        health = ShardTimeline(2, []).health()
        assert health["epochs"] == 0
        assert health["worst_epoch"] is None
        assert health["barrier_overhead"] == [0.0, 0.0]


class TestSpans:
    def test_barrier_and_epoch_spans_tile_each_sample(self, timeline):
        spans = timeline.spans_by_shard()
        assert len(spans) == 2
        assert len(spans[0]) == 4  # two samples x (barrier + epoch)
        barrier = spans[0][0]
        epoch = spans[0][1]
        assert barrier[0] == "barrier e1"
        assert epoch[0] == "epoch e1"
        # The epoch span starts exactly where the barrier span ends.
        assert epoch[1] == pytest.approx(barrier[1] + barrier[2])
        assert barrier[3]["epoch"] == 1
        assert "queue_depth" in epoch[3]

    def test_spans_are_monotone_per_shard(self, timeline):
        for shard_spans in timeline.spans_by_shard():
            starts = [span[1] for span in shard_spans]
            assert starts == sorted(starts)
