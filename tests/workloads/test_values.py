"""Tests for attribute-value distributions."""

import pytest

from repro.workloads.values import constant_values, uniform_values, zipf_values


class TestZipfValues:
    def test_range_respected(self):
        values = zipf_values(2000, low=10, high=500, seed=1)
        assert len(values) == 2000
        assert min(values) >= 10
        assert max(values) <= 500

    def test_skew_towards_small_values(self):
        values = zipf_values(5000, low=10, high=500, seed=2)
        small = sum(1 for v in values if v < 50)
        large = sum(1 for v in values if v > 400)
        assert small > 5 * max(1, large)

    def test_exponent_zero_is_uniformish(self):
        values = zipf_values(5000, low=1, high=10, exponent=0.0, seed=3)
        counts = {v: values.count(v) for v in range(1, 11)}
        assert min(counts.values()) > 300

    def test_deterministic_for_seed(self):
        assert zipf_values(100, seed=4) == zipf_values(100, seed=4)

    def test_zero_hosts(self):
        assert zipf_values(0) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            zipf_values(-1)
        with pytest.raises(ValueError):
            zipf_values(10, low=5, high=4)
        with pytest.raises(ValueError):
            zipf_values(10, exponent=-0.5)


class TestUniformValues:
    def test_range_and_count(self):
        values = uniform_values(1000, low=10, high=20, seed=1)
        assert len(values) == 1000
        assert set(values) <= set(range(10, 21))

    def test_roughly_uniform(self):
        values = uniform_values(11000, low=1, high=11, seed=2)
        counts = [values.count(v) for v in range(1, 12)]
        assert min(counts) > 700

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            uniform_values(-1)
        with pytest.raises(ValueError):
            uniform_values(10, low=2, high=1)


class TestConstantValues:
    def test_default_is_all_ones(self):
        assert constant_values(4) == [1, 1, 1, 1]

    def test_custom_value(self):
        assert constant_values(3, value=7) == [7, 7, 7]

    def test_invalid(self):
        with pytest.raises(ValueError):
            constant_values(-2)
