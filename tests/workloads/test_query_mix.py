"""Tests for the open-world query-mix workload generator."""

import pytest

from repro.workloads.query_mix import (
    DEFAULT_AGGREGATE_MIX,
    DEFAULT_PROTOCOL_MIX,
    QueryMixConfig,
    QuerySubmission,
    generate_query_mix,
)


class TestConfigValidation:
    def test_rejects_bad_parameters(self):
        for kwargs in (dict(qps=0.0), dict(duration=0.0),
                       dict(protocol_mix={}), dict(aggregate_mix={}),
                       dict(continuous_fraction=1.5), dict(period=0.0),
                       dict(reports=0), dict(think_time=-1.0),
                       dict(max_queries=0)):
            with pytest.raises(ValueError):
                QueryMixConfig(**kwargs)


class TestGeneration:
    def test_schedule_is_a_pure_function_of_inputs(self):
        a = generate_query_mix(100, qps=2.0, duration=30.0, seed=5)
        b = generate_query_mix(100, qps=2.0, duration=30.0, seed=5)
        assert a == b
        c = generate_query_mix(100, qps=2.0, duration=30.0, seed=6)
        assert a != c

    def test_submissions_are_sorted_and_within_bounds(self):
        submissions = generate_query_mix(50, qps=3.0, duration=40.0, seed=1)
        assert submissions == sorted(
            submissions, key=lambda s: (s.time, s.stream, s.report_index))
        assert all(0 <= s.querying_host < 50 for s in submissions)
        one_shots = [s for s in submissions if not s.continuous]
        assert all(s.time < 40.0 for s in one_shots)
        assert all(s.protocol in DEFAULT_PROTOCOL_MIX for s in submissions)
        assert all(s.aggregate in DEFAULT_AGGREGATE_MIX for s in submissions)

    def test_poisson_rate_is_roughly_respected(self):
        streams = {s.stream for s in generate_query_mix(
            1000, qps=5.0, duration=200.0, seed=2,
            continuous_fraction=0.0)}
        # E[streams] = 1000; a 4-sigma band keeps this deterministic test
        # meaningful without being brittle.
        assert 800 <= len(streams) <= 1200

    def test_continuous_streams_expand_into_report_chains(self):
        submissions = generate_query_mix(
            50, qps=1.0, duration=30.0, seed=3,
            continuous_fraction=1.0, period=5.0, reports=4,
            think_time=2.0)
        by_stream = {}
        for s in submissions:
            by_stream.setdefault(s.stream, []).append(s)
        for stream, chain in by_stream.items():
            chain.sort(key=lambda s: s.report_index)
            assert len(chain) == 4
            assert all(s.continuous for s in chain)
            # One user stream keeps one protocol/aggregate/host.
            assert len({(s.protocol, s.aggregate, s.querying_host)
                        for s in chain}) == 1
            # Reports are spaced by period + think time.
            gaps = [round(b.time - a.time, 6)
                    for a, b in zip(chain, chain[1:])]
            assert gaps == [7.0] * 3

    def test_max_queries_truncates_earliest_first(self):
        full = generate_query_mix(50, qps=2.0, duration=30.0, seed=4)
        capped = generate_query_mix(50, qps=2.0, duration=30.0, seed=4,
                                    max_queries=5)
        assert capped == full[:5]

    def test_weighted_mix_is_order_independent(self):
        mix_a = {"wildfire": 1.0, "spanning-tree": 2.0}
        mix_b = {"spanning-tree": 2.0, "wildfire": 1.0}
        a = generate_query_mix(50, qps=2.0, duration=50.0, seed=7,
                               protocol_mix=mix_a)
        b = generate_query_mix(50, qps=2.0, duration=50.0, seed=7,
                               protocol_mix=mix_b)
        assert a == b

    def test_explicit_config_with_overrides(self):
        config = QueryMixConfig(qps=1.0, duration=10.0)
        submissions = generate_query_mix(20, config, seed=0,
                                         max_queries=3)
        assert len(submissions) <= 3
        assert all(isinstance(s, QuerySubmission) for s in submissions)
