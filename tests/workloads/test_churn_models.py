"""Tests for churn workload helpers."""

import pytest

from repro.workloads.churn_models import (
    churn_for_fraction,
    departures_sweep,
    session_lifetimes,
)


class TestChurnForFraction:
    def test_fraction_of_hosts_fail(self):
        schedule = churn_for_fraction(200, 0.1, start=0.0, end=10.0, seed=1)
        assert schedule.num_failures == 20

    def test_zero_fraction(self):
        schedule = churn_for_fraction(200, 0.0, start=0.0, end=10.0)
        assert schedule.num_failures == 0

    def test_protected_host_excluded(self):
        schedule = churn_for_fraction(50, 0.9, start=0.0, end=1.0, seed=2, protect=[0])
        assert 0 not in schedule.failed_hosts

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            churn_for_fraction(10, 1.5, start=0.0, end=1.0)


class TestDeparturesSweep:
    def test_one_schedule_per_departure_count(self):
        schedules = departures_sweep(500, [10, 20, 40], start=0.0, end=5.0, seed=3)
        assert [s.num_failures for s in schedules] == [10, 20, 40]

    def test_schedules_use_independent_victims(self):
        schedules = departures_sweep(500, [50, 50], start=0.0, end=5.0, seed=3)
        assert set(schedules[0].failed_hosts) != set(schedules[1].failed_hosts)


class TestSessionLifetimes:
    def test_median_roughly_matches(self):
        lifetimes = session_lifetimes(20000, median_lifetime=60.0, seed=1)
        lifetimes.sort()
        median = lifetimes[len(lifetimes) // 2]
        assert median == pytest.approx(60.0, rel=0.1)

    def test_invalid_median(self):
        with pytest.raises(ValueError):
            session_lifetimes(10, median_lifetime=0.0)
