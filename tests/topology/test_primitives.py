"""Tests for the deterministic topologies used in proofs and tests."""

import pytest

from repro.topology.primitives import (
    chain_topology,
    cycle_with_pendant_topology,
    random_tree_topology,
    ring_topology,
    star_topology,
    tree_topology,
)


class TestChain:
    def test_structure(self):
        topo = chain_topology(4)
        assert list(topo.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_single_host_chain(self):
        assert chain_topology(1).num_edges == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            chain_topology(0)


class TestRing:
    def test_structure(self):
        topo = ring_topology(5)
        assert topo.num_edges == 5
        assert all(len(topo.neighbors(h)) == 2 for h in range(5))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ring_topology(2)


class TestStar:
    def test_structure(self):
        topo = star_topology(6)
        assert topo.num_hosts == 7
        assert len(topo.neighbors(0)) == 6
        assert all(topo.neighbors(leaf) == {0} for leaf in range(1, 7))

    def test_invalid(self):
        with pytest.raises(ValueError):
            star_topology(0)


class TestTree:
    def test_complete_binary_tree_sizes(self):
        topo = tree_topology(depth=3, branching=2)
        assert topo.num_hosts == 15
        assert topo.num_edges == 14

    def test_depth_zero_is_single_host(self):
        topo = tree_topology(depth=0)
        assert topo.num_hosts == 1

    def test_ternary_tree(self):
        topo = tree_topology(depth=2, branching=3)
        assert topo.num_hosts == 13

    def test_invalid(self):
        with pytest.raises(ValueError):
            tree_topology(depth=-1)
        with pytest.raises(ValueError):
            tree_topology(depth=2, branching=0)


class TestCycleWithPendant:
    def test_structure(self):
        topo = cycle_with_pendant_topology(8)
        assert topo.num_hosts == 9
        pendant = 8
        assert topo.neighbors(pendant) == {4}
        assert len(topo.neighbors(4)) == 3

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_with_pendant_topology(3)


class TestRandomTree:
    def test_is_a_tree(self):
        topo = random_tree_topology(40, seed=3)
        assert topo.num_edges == 39
        assert topo.is_connected()

    def test_deterministic(self):
        a = random_tree_topology(20, seed=5)
        b = random_tree_topology(20, seed=5)
        assert list(a.edges()) == list(b.edges())

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_tree_topology(0)
