"""Tests for the Topology container."""

import pytest

from repro.topology.base import Topology
from repro.topology.primitives import chain_topology, ring_topology


class TestTopologyValidation:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Topology(adjacency=[{0}])

    def test_rejects_unknown_host(self):
        with pytest.raises(ValueError):
            Topology(adjacency=[{5}, {0}])

    def test_rejects_asymmetric_edge(self):
        with pytest.raises(ValueError):
            Topology(adjacency=[{1}, set()])

    def test_from_edges_ignores_self_loops(self):
        topo = Topology.from_edges(3, [(0, 1), (1, 1), (1, 2)])
        assert topo.num_edges == 2


class TestTopologyMeasures:
    def test_counts_on_chain(self):
        topo = chain_topology(5)
        assert topo.num_hosts == 5
        assert topo.num_edges == 4
        assert topo.average_degree == pytest.approx(1.6)
        assert sorted(topo.degrees()) == [1, 1, 2, 2, 2]

    def test_edges_are_unique_and_ordered(self):
        topo = ring_topology(4)
        edges = list(topo.edges())
        assert len(edges) == 4
        assert all(a < b for a, b in edges)

    def test_bfs_distances(self):
        topo = chain_topology(4)
        assert topo.bfs_distances(0) == {0: 0, 1: 1, 2: 2, 3: 3}
        assert topo.bfs_distances(3)[0] == 3

    def test_connectivity(self):
        topo = chain_topology(4)
        assert topo.is_connected()
        disconnected = Topology(adjacency=[{1}, {0}, set()])
        assert not disconnected.is_connected()
        assert disconnected.largest_component() == {0, 1}

    def test_diameter_estimate_exact_on_chain(self):
        assert chain_topology(9).diameter_estimate(samples=4) == 8

    def test_diameter_estimate_on_ring(self):
        # Ring of 10: diameter 5; double sweep finds it.
        assert ring_topology(10).diameter_estimate(samples=6) == 5

    def test_neighbors_returns_copy(self):
        topo = chain_topology(3)
        neighbors = topo.neighbors(1)
        neighbors.add(99)
        assert topo.neighbors(1) == {0, 2}


class TestConversions:
    def test_to_network_preserves_structure(self):
        topo = ring_topology(6)
        network = topo.to_network()
        assert network.num_hosts == 6
        assert network.num_edges() == 6
        assert network.neighbors(0) == topo.neighbors(0)

    def test_to_network_is_independent_instance(self):
        topo = ring_topology(6)
        network = topo.to_network()
        network.fail_host(0, time=1.0)
        assert topo.neighbors(1) == {0, 2}

    def test_to_networkx_roundtrip(self):
        nx_graph = ring_topology(5).to_networkx()
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == 5
