"""Tests for the random, power-law, grid, Gnutella-like and small-world generators."""

import pytest

from repro.topology.gnutella import gnutella_like_topology
from repro.topology.grid import grid_coordinates, grid_topology
from repro.topology.power_law import power_law_topology
from repro.topology.random_graph import random_topology
from repro.topology.small_world import small_world_topology


class TestRandomTopology:
    def test_size_and_connectivity(self):
        topo = random_topology(200, avg_degree=5, seed=1)
        assert topo.num_hosts == 200
        assert topo.is_connected()

    def test_average_degree_close_to_target(self):
        topo = random_topology(500, avg_degree=6, seed=2, connected=False)
        assert topo.average_degree == pytest.approx(6, rel=0.15)

    def test_deterministic_for_seed(self):
        a = random_topology(100, seed=9)
        b = random_topology(100, seed=9)
        assert list(a.edges()) == list(b.edges())

    def test_different_seeds_differ(self):
        a = random_topology(100, seed=1)
        b = random_topology(100, seed=2)
        assert set(a.edges()) != set(b.edges())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_topology(0)
        with pytest.raises(ValueError):
            random_topology(10, avg_degree=-1)
        with pytest.raises(ValueError):
            random_topology(5, avg_degree=10)

    def test_metadata_recorded(self):
        topo = random_topology(50, avg_degree=4, seed=3)
        assert topo.metadata["generator"] == "random"
        assert topo.metadata["num_hosts"] == 50


class TestPowerLawTopology:
    def test_size_and_connectivity(self):
        topo = power_law_topology(300, seed=1)
        assert topo.num_hosts == 300
        assert topo.is_connected()

    def test_degree_distribution_is_heavy_tailed(self):
        topo = power_law_topology(800, seed=4)
        degrees = sorted(topo.degrees(), reverse=True)
        # A hub should exist with degree far above the median.
        median = degrees[len(degrees) // 2]
        assert degrees[0] >= 4 * max(1, median)

    def test_min_degree_respected(self):
        topo = power_law_topology(200, min_degree=3, seed=5)
        assert min(topo.degrees()) >= 1
        assert topo.average_degree >= 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            power_law_topology(0)
        with pytest.raises(ValueError):
            power_law_topology(10, min_degree=0)


class TestGridTopology:
    def test_moore_neighborhood_sizes(self):
        topo = grid_topology(5)
        degrees = topo.degrees()
        # Corners have 3 neighbors, edges 5, interior 8.
        assert degrees.count(3) == 4
        assert degrees.count(8) == 9
        assert topo.num_hosts == 25

    def test_von_neumann_neighborhood(self):
        topo = grid_topology(4, neighborhood="von_neumann")
        assert max(topo.degrees()) == 4
        assert min(topo.degrees()) == 2

    def test_rectangular_grid(self):
        topo = grid_topology(3, 7)
        assert topo.num_hosts == 21
        assert topo.is_connected()

    def test_grid_coordinates_roundtrip(self):
        cols = 7
        assert grid_coordinates(0, cols) == (0, 0)
        assert grid_coordinates(8, cols) == (1, 1)
        assert grid_coordinates(20, cols) == (2, 6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            grid_topology(0)
        with pytest.raises(ValueError):
            grid_topology(3, neighborhood="hex")
        with pytest.raises(ValueError):
            grid_coordinates(3, 0)

    def test_diameter_of_grid_is_side_minus_one(self):
        # With Moore neighborhoods, diagonal moves make the diameter the
        # maximum of row and column distances.
        topo = grid_topology(6)
        assert topo.diameter_estimate(samples=6) == 5


class TestGnutellaLikeTopology:
    def test_size_and_connectivity(self):
        topo = gnutella_like_topology(1500, seed=1)
        assert topo.num_hosts == 1500
        assert topo.is_connected()

    def test_small_diameter(self):
        topo = gnutella_like_topology(2000, seed=2)
        assert topo.diameter_estimate(samples=4) <= 14

    def test_heavy_tail_present(self):
        topo = gnutella_like_topology(2000, seed=3)
        degrees = sorted(topo.degrees(), reverse=True)
        assert degrees[0] >= 20
        # Most hosts are low-degree leaves.
        low_degree = sum(1 for d in degrees if d <= 3)
        assert low_degree > topo.num_hosts * 0.4

    def test_metadata_mentions_substitution(self):
        topo = gnutella_like_topology(500, seed=0)
        assert "substitutes_for" in topo.metadata

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            gnutella_like_topology(0)
        with pytest.raises(ValueError):
            gnutella_like_topology(10, core_fraction=0.0)
        with pytest.raises(ValueError):
            gnutella_like_topology(10, core_degree=0)


class TestSmallWorldTopology:
    def test_size_and_connectivity(self):
        topo = small_world_topology(200, nearest_neighbors=4, seed=1)
        assert topo.num_hosts == 200
        assert topo.is_connected()

    def test_rewiring_reduces_diameter(self):
        lattice = small_world_topology(300, nearest_neighbors=4,
                                       rewire_probability=0.0, seed=1)
        rewired = small_world_topology(300, nearest_neighbors=4,
                                       rewire_probability=0.2, seed=1)
        assert rewired.diameter_estimate(samples=4) < lattice.diameter_estimate(samples=4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            small_world_topology(0)
        with pytest.raises(ValueError):
            small_world_topology(10, nearest_neighbors=3)
        with pytest.raises(ValueError):
            small_world_topology(10, rewire_probability=1.5)
