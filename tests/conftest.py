"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.topology.grid import grid_topology
from repro.topology.primitives import chain_topology, ring_topology, star_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import zipf_values


@pytest.fixture
def small_random_topology():
    """A small connected random topology used across protocol tests."""
    return random_topology(60, avg_degree=4, seed=7)


@pytest.fixture
def small_grid_topology():
    """An 8x8 sensor grid."""
    return grid_topology(8)


@pytest.fixture
def small_chain_topology():
    return chain_topology(10)


@pytest.fixture
def small_ring_topology():
    return ring_topology(12)


@pytest.fixture
def small_star_topology():
    return star_topology(9)


@pytest.fixture
def zipf_values_60():
    """Zipf attribute values matching the 60-host random topology."""
    return zipf_values(60, seed=7)
