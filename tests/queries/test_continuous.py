"""Tests for continuous queries with validity windows."""

import pytest

from repro.queries.continuous import ContinuousQuery, WindowedResult
from repro.queries.query import AggregateQuery
from repro.simulation.churn import ChurnSchedule
from repro.topology.primitives import ring_topology
from repro.workloads.values import constant_values


class TestContinuousQueryConfig:
    def test_report_times(self):
        query = ContinuousQuery(query=AggregateQuery.of("count"), period=5.0,
                                window=10.0, duration=20.0)
        assert query.report_times() == [5.0, 10.0, 15.0, 20.0]

    def test_invalid_parameters(self):
        base = dict(query=AggregateQuery.of("count"), period=5.0, window=10.0,
                    duration=20.0)
        with pytest.raises(ValueError):
            ContinuousQuery(**{**base, "period": 0.0})
        with pytest.raises(ValueError):
            ContinuousQuery(**{**base, "window": 0.0})
        with pytest.raises(ValueError):
            ContinuousQuery(**{**base, "duration": 1.0})


class TestContinuousQueryRun:
    def test_reports_track_shrinking_population(self):
        topology = ring_topology(20)
        values = constant_values(20, 1)
        # Hosts fail steadily over the run.
        churn = ChurnSchedule(failures=[(float(2 + i), 10 + i) for i in range(8)])
        continuous = ContinuousQuery(query=AggregateQuery.of("count"), period=10.0,
                                     window=10.0, duration=30.0)

        def execute_once(window_churn, report_time):
            # An idealised valid executor: counts the hosts in the stable
            # core of the window (what WILDFIRE would return with an exact
            # duplicate-insensitive counter).
            from repro.semantics.validity import stable_core

            failed_before = {h for t, h in churn.failures if t <= report_time}
            return float(20 - len(failed_before))

        results = continuous.run(topology, values, churn, querying_host=0,
                                 execute_once=execute_once)
        assert len(results) == 3
        assert all(isinstance(r, WindowedResult) for r in results)
        counts = [r.value for r in results]
        assert counts[0] >= counts[-1]
        assert all(r.is_valid for r in results)

    def test_window_bounds_exclude_pre_window_failures(self):
        topology = ring_topology(10)
        values = constant_values(10, 1)
        churn = ChurnSchedule(failures=[(1.0, 5)])
        continuous = ContinuousQuery(query=AggregateQuery.of("count"), period=20.0,
                                     window=5.0, duration=20.0)

        def execute_once(window_churn, report_time):
            # Host 5 failed long before the window [15, 20]; a valid answer
            # for that window counts the 9 remaining hosts.
            return 9.0

        results = continuous.run(topology, values, churn, querying_host=0,
                                 execute_once=execute_once)
        assert len(results) == 1
        result = results[0]
        assert result.window_start == 15.0
        assert result.bounds.core_size == 9
        assert result.is_valid
