"""Tests for continuous queries with validity windows."""

import pytest

from repro.protocols.base import run_protocol
from repro.protocols.wildfire import Wildfire
from repro.queries.continuous import ContinuousQuery, WindowedResult
from repro.queries.query import AggregateQuery
from repro.service import QueryService
from repro.simulation.churn import ChurnSchedule
from repro.topology.primitives import ring_topology
from repro.workloads.values import constant_values


class TestContinuousQueryConfig:
    def test_report_times(self):
        query = ContinuousQuery(query=AggregateQuery.of("count"), period=5.0,
                                window=10.0, duration=20.0)
        assert query.report_times() == [5.0, 10.0, 15.0, 20.0]

    def test_invalid_parameters(self):
        base = dict(query=AggregateQuery.of("count"), period=5.0, window=10.0,
                    duration=20.0)
        with pytest.raises(ValueError):
            ContinuousQuery(**{**base, "period": 0.0})
        with pytest.raises(ValueError):
            ContinuousQuery(**{**base, "window": 0.0})
        with pytest.raises(ValueError):
            ContinuousQuery(**{**base, "duration": 1.0})


class TestContinuousQueryRun:
    def test_reports_track_shrinking_population(self):
        topology = ring_topology(20)
        values = constant_values(20, 1)
        # Hosts fail steadily over the run.
        churn = ChurnSchedule(failures=[(float(2 + i), 10 + i) for i in range(8)])
        continuous = ContinuousQuery(query=AggregateQuery.of("count"), period=10.0,
                                     window=10.0, duration=30.0)

        def execute_once(window_churn, report_time):
            # An idealised valid executor: counts the hosts in the stable
            # core of the window (what WILDFIRE would return with an exact
            # duplicate-insensitive counter).
            from repro.semantics.validity import stable_core

            failed_before = {h for t, h in churn.failures if t <= report_time}
            return float(20 - len(failed_before))

        results = continuous.run(topology, values, churn, querying_host=0,
                                 execute_once=execute_once)
        assert len(results) == 3
        assert all(isinstance(r, WindowedResult) for r in results)
        counts = [r.value for r in results]
        assert counts[0] >= counts[-1]
        assert all(r.is_valid for r in results)

    def test_window_bounds_exclude_pre_window_failures(self):
        topology = ring_topology(10)
        values = constant_values(10, 1)
        churn = ChurnSchedule(failures=[(1.0, 5)])
        continuous = ContinuousQuery(query=AggregateQuery.of("count"), period=20.0,
                                     window=5.0, duration=20.0)

        def execute_once(window_churn, report_time):
            # Host 5 failed long before the window [15, 20]; a valid answer
            # for that window counts the 9 remaining hosts.
            return 9.0

        results = continuous.run(topology, values, churn, querying_host=0,
                                 execute_once=execute_once)
        assert len(results) == 1
        result = results[0]
        assert result.window_start == 15.0
        assert result.bounds.core_size == 9
        assert result.is_valid


#: Scenario shared by the compat-pin and live-path tests: host 10 holds
#: the distinctive minimum and fails at t=1, long before the reporting
#: window opens.
def _stale_min_scenario():
    topology = ring_topology(20)
    values = [1.0] * 20
    values[10] = 0.5
    churn = ChurnSchedule(failures=[(1.0, 10)])
    continuous = ContinuousQuery(query=AggregateQuery.of("min"),
                                 period=20.0, window=5.0, duration=20.0)
    return topology, values, churn, continuous


class TestLegacyCompatPathRegression:
    """Pin the historical per-report behaviour the live path replaces.

    Legacy drivers implement ``execute_once`` by *rebuilding a pristine
    simulator* per report, restricted to the window's churn -- so a host
    that failed long before the window is resurrected for the execution
    (only the bounds know it is gone).  Goldens and the existing driver
    outputs depend on this, so the compat path must keep producing the
    stale answer bit-for-bit.
    """

    def test_compat_path_resurrects_pre_window_failures(self):
        topology, values, churn, continuous = _stale_min_scenario()
        seen_calls = []

        def execute_once(window_churn, report_time):
            seen_calls.append(
                (tuple(window_churn.failures), report_time))
            return run_protocol(Wildfire(), topology, values, "min",
                                querying_host=0, churn=window_churn,
                                seed=0).value

        results = continuous.run(topology, values, churn, querying_host=0,
                                 execute_once=execute_once)
        # The window [15, 20] excludes the t=1 failure, so the rebuilt
        # pristine run still counts host 10: the stale minimum 0.5.
        assert seen_calls == [((), 20.0)]
        assert len(results) == 1
        assert results[0].report_time == 20.0
        assert results[0].window_start == 15.0
        assert results[0].value == 0.5

    def test_compat_path_window_restriction_is_unchanged(self):
        # The original windowing arithmetic, pinned exactly: failures
        # inside the window are forwarded, earlier ones excluded.
        topology = ring_topology(10)
        values = constant_values(10, 1)
        churn = ChurnSchedule(failures=[(1.0, 5), (16.0, 7)])
        continuous = ContinuousQuery(query=AggregateQuery.of("count"),
                                     period=20.0, window=5.0, duration=20.0)
        forwarded = []
        continuous.run(topology, values, churn, querying_host=0,
                       execute_once=lambda c, t: forwarded.append(
                           tuple(c.failures)) or 8.0)
        assert forwarded == [((16.0, 7),)]


class TestLivePath:
    def test_live_reports_run_on_the_churned_network(self):
        """The fix under test: a live session launched after host 10
        failed genuinely runs without it, so the declared minimum is the
        survivors' -- where the compat path reports the stale 0.5."""
        topology, values, churn, continuous = _stale_min_scenario()
        service = QueryService(topology, values, churn=churn, seed=0)
        results = continuous.run_live(service, "wildfire", querying_host=0)
        assert len(results) == 1
        assert results[0].value == 1.0
        assert results[0].is_valid

    def test_live_reports_share_the_service_with_other_tenants(self):
        topology, values, churn, continuous = _stale_min_scenario()
        solo_service = QueryService(topology, values, churn=churn, seed=0)
        solo = continuous.run_live(solo_service, "wildfire",
                                   querying_host=0)
        shared_service = QueryService(topology, values, churn=churn, seed=0)
        session_ids = continuous.schedule_live(shared_service, "wildfire",
                                               querying_host=0)
        for at in (0.0, 3.0, 9.0):
            shared_service.submit("spanning-tree", "count", at=at,
                                  querying_host=2)
        shared_service.run()
        shared = continuous.collect_live(shared_service, session_ids,
                                         querying_host=0)
        # Seeds are content-derived under one service seed, so the two
        # services hand identical submissions identical seed streams;
        # explicit comparison via values: the multiplexed reports match
        # solo ones.
        assert [r.value for r in shared] == [r.value for r in solo]
        assert [r.is_valid for r in shared] == [r.is_valid for r in solo]

    def test_live_reports_track_a_shrinking_population(self):
        topology = ring_topology(20)
        values = constant_values(20, 1)
        churn = ChurnSchedule(
            failures=[(float(2 + i), 10 + i) for i in range(8)])
        continuous = ContinuousQuery(query=AggregateQuery.of("min"),
                                     period=10.0, window=40.0,
                                     duration=30.0)
        service = QueryService(topology, values, churn=churn, seed=1)
        results = continuous.run_live(service, "wildfire", querying_host=0)
        assert len(results) == 3
        assert all(isinstance(r, WindowedResult) for r in results)
        # Reports declare at launch + T, in order.
        assert [r.report_time for r in results] == sorted(
            r.report_time for r in results)
        assert all(r.is_valid for r in results)
