"""Tests for the continuous size estimators (Section 5.4)."""

import pytest

from repro.queries.size_estimation import (
    CaptureRecaptureEstimator,
    RingSegmentEstimator,
    required_sample_size,
    run_capture_recapture,
)


class TestRequiredSampleSize:
    def test_formula(self):
        # 4 / (0.1^2 * 0.5) * ln(2 / 0.05) ~= 2951.7 -> 2952
        assert required_sample_size(0.1, 0.05, 0.5) == 2952

    def test_smaller_marked_fraction_needs_more_samples(self):
        assert required_sample_size(0.1, 0.05, 0.01) > required_sample_size(0.1, 0.05, 0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            required_sample_size(0.0, 0.05, 0.5)
        with pytest.raises(ValueError):
            required_sample_size(0.1, 1.0, 0.5)
        with pytest.raises(ValueError):
            required_sample_size(0.1, 0.05, 0.0)


class TestRingSegmentEstimator:
    def test_estimates_within_reason(self):
        estimator = RingSegmentEstimator.random_overlay(4000, seed=1)
        estimate = estimator.estimate(sample_size=400, seed=2)
        assert estimate == pytest.approx(4000, rel=0.35)
        assert estimator.true_size == 4000

    def test_full_sample_is_exact(self):
        estimator = RingSegmentEstimator.random_overlay(50, seed=3)
        # Sampling every host covers the whole ring, whose total length is 1.
        assert estimator.estimate(sample_size=50, seed=0) == pytest.approx(50)

    def test_segment_length_of_unknown_position_rejected(self):
        estimator = RingSegmentEstimator([0.1, 0.5, 0.9])
        with pytest.raises(ValueError):
            estimator.segment_length(0.3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RingSegmentEstimator([])
        with pytest.raises(ValueError):
            RingSegmentEstimator([1.2])
        estimator = RingSegmentEstimator([0.2, 0.6])
        with pytest.raises(ValueError):
            estimator.estimate(0)
        with pytest.raises(ValueError):
            estimator.estimate(3)


class TestCaptureRecapture:
    def test_first_interval_produces_no_estimate(self):
        estimator = CaptureRecaptureEstimator()
        record = estimator.observe_interval(set(range(100)), sample=list(range(10)))
        assert record is None

    def test_second_interval_estimates_population(self):
        estimator = CaptureRecaptureEstimator()
        population = set(range(1000))
        estimator.observe_interval(population, sample=list(range(0, 1000, 5)))
        record = estimator.observe_interval(population, sample=list(range(0, 1000, 4)))
        assert record is not None
        assert record.estimate == pytest.approx(1000, rel=0.3)
        assert estimator.latest() is record

    def test_marked_hosts_pruned_when_dead(self):
        estimator = CaptureRecaptureEstimator()
        estimator.observe_interval({0, 1, 2, 3}, sample=[0, 1])
        # Hosts 0 and 1 die; the marked set for the next interval is empty
        # so no estimate can be produced.
        record = estimator.observe_interval({2, 3}, sample=[2])
        assert record is None
        assert estimator.marked_hosts == set()

    def test_max_marked_cap(self):
        estimator = CaptureRecaptureEstimator(max_marked=2)
        estimator.observe_interval(set(range(10)), sample=[0, 1, 2, 3, 4])
        estimator.observe_interval(set(range(10)), sample=[5])
        assert len(estimator.marked_hosts) <= 2

    def test_invalid_max_marked(self):
        with pytest.raises(ValueError):
            CaptureRecaptureEstimator(max_marked=0)

    def test_run_capture_recapture_helper(self):
        populations = [set(range(500)) for _ in range(8)]
        estimates = run_capture_recapture(populations, sample_size=150, seed=4)
        assert len(estimates) >= 6
        # Individual estimates are noisy (hypergeometric recapture counts);
        # each should be within a factor of two and their mean much closer.
        for record in estimates:
            assert 250 <= record.estimate <= 1000
        mean = sum(r.estimate for r in estimates) / len(estimates)
        assert mean == pytest.approx(500, rel=0.3)

    def test_run_capture_recapture_validates_sample_size(self):
        with pytest.raises(ValueError):
            run_capture_recapture([set(range(10))], sample_size=0)
        with pytest.raises(ValueError):
            run_capture_recapture([set(range(10))], sample_size=20)
