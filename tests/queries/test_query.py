"""Tests for the aggregate query model."""

import pytest

from repro.queries.query import AggregateQuery, QueryKind


class TestQueryKind:
    def test_parse_aliases(self):
        assert QueryKind.parse("minimum") is QueryKind.MIN
        assert QueryKind.parse("Max") is QueryKind.MAX
        assert QueryKind.parse(" count ") is QueryKind.COUNT
        assert QueryKind.parse("total") is QueryKind.SUM
        assert QueryKind.parse("mean") is QueryKind.AVG

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            QueryKind.parse("median")

    def test_duplicate_insensitive_exact_flag(self):
        assert QueryKind.MIN.duplicate_insensitive_exact
        assert QueryKind.MAX.duplicate_insensitive_exact
        assert not QueryKind.COUNT.duplicate_insensitive_exact
        assert not QueryKind.SUM.duplicate_insensitive_exact
        assert not QueryKind.AVG.duplicate_insensitive_exact


class TestAggregateQuery:
    def test_of_builds_from_string(self):
        query = AggregateQuery.of("sum", attribute="load")
        assert query.kind is QueryKind.SUM
        assert query.attribute == "load"

    def test_evaluate_all_kinds(self):
        values = [4, 8, 2, 6]
        assert AggregateQuery.of("min").evaluate(values) == 2
        assert AggregateQuery.of("max").evaluate(values) == 8
        assert AggregateQuery.of("count").evaluate(values) == 4
        assert AggregateQuery.of("sum").evaluate(values) == 20
        assert AggregateQuery.of("avg").evaluate(values) == 5

    def test_evaluate_empty(self):
        assert AggregateQuery.of("sum").evaluate([]) == 0.0

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            AggregateQuery(kind=QueryKind.COUNT, epsilon=0.0)
        with pytest.raises(ValueError):
            AggregateQuery(kind=QueryKind.COUNT, epsilon=1.5)
        AggregateQuery(kind=QueryKind.COUNT, epsilon=0.3)

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            AggregateQuery(kind=QueryKind.COUNT, confidence=0.0)
        AggregateQuery(kind=QueryKind.COUNT, confidence=0.9)

    def test_describe(self):
        query = AggregateQuery.of("count", epsilon=0.1, confidence=0.95)
        text = query.describe()
        assert "count" in text
        assert "eps=0.1" in text
        assert "conf=0.95" in text

    def test_is_frozen(self):
        query = AggregateQuery.of("min")
        with pytest.raises(Exception):
            query.attribute = "other"
